"""Uncertain transactions: the atomic records of an uncertain database.

An uncertain transaction is a set of *units*.  Each unit pairs an item
with the probability that the item actually occurs in the transaction,
exactly as in Definition 1 of Tong et al. (VLDB 2012).  Items are
represented by integers for compactness; a :class:`repro.db.vocabulary.Vocabulary`
maps them back to human-readable labels when needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Tuple

__all__ = ["UncertainTransaction"]


def _validated_units(units: Mapping[int, float]) -> Dict[int, float]:
    """Return a plain dict of item -> probability, validating every unit."""
    cleaned: Dict[int, float] = {}
    for item, probability in units.items():
        item = int(item)
        probability = float(probability)
        if item < 0:
            raise ValueError(f"item identifiers must be non-negative, got {item}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"probability for item {item} must lie in [0, 1], got {probability}"
            )
        if probability > 0.0:
            cleaned[item] = probability
    return cleaned


@dataclass(frozen=True)
class UncertainTransaction:
    """A single tuple ``<tid, {item: probability, ...}>`` of an uncertain database.

    Items with probability zero are dropped on construction: a unit that can
    never appear carries no information for any of the mining algorithms and
    the paper's datasets never contain such units.

    Parameters
    ----------
    tid:
        The transaction identifier.  Identifiers need not be contiguous but
        must be unique within a database.
    units:
        Mapping from item identifier to its existence probability.
    """

    tid: int
    units: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "units", _validated_units(self.units))

    @classmethod
    def restamp(cls, tid: int, source: "UncertainTransaction") -> "UncertainTransaction":
        """A copy of ``source`` under a new tid, skipping re-validation.

        ``source``'s units were validated when it was constructed, so the
        copy can share them; the streaming layer uses this to re-stamp
        replayed transactions with their arrival sequence ids without
        paying a per-unit validation pass per arrival.
        """
        clone = object.__new__(cls)
        object.__setattr__(clone, "tid", int(tid))
        object.__setattr__(clone, "units", source.units)
        return clone

    # -- basic container behaviour -------------------------------------------------
    def __len__(self) -> int:
        return len(self.units)

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return iter(self.units.items())

    def __contains__(self, item: int) -> bool:
        return item in self.units

    # -- probability queries --------------------------------------------------------
    def probability(self, item: int) -> float:
        """Return the existence probability of ``item`` (0.0 if absent)."""
        return self.units.get(item, 0.0)

    def itemset_probability(self, itemset: Iterable[int]) -> float:
        """Return the probability that every item of ``itemset`` occurs here.

        Items within one transaction are assumed independent, the standard
        assumption shared by every algorithm in the paper, so the joint
        probability is the product of the unit probabilities.  The product is
        zero as soon as a single member is missing.
        """
        probability = 1.0
        for item in itemset:
            unit = self.units.get(item)
            if unit is None:
                return 0.0
            probability *= unit
        return probability

    def items(self) -> Tuple[int, ...]:
        """Return the items present in this transaction (probability > 0)."""
        return tuple(self.units.keys())

    def restricted_to(self, keep: Iterable[int]) -> "UncertainTransaction":
        """Return a copy containing only the items in ``keep``.

        This is the primitive used by the miners to trim globally infrequent
        items out of the database before the expensive recursive phases.
        """
        keep_set = set(keep)
        return UncertainTransaction(
            self.tid, {i: p for i, p in self.units.items() if i in keep_set}
        )

    def expected_length(self) -> float:
        """Return the expected number of items occurring in the transaction."""
        return float(sum(self.units.values()))
