"""Integrity checks for uncertain databases.

The paper stresses that inconsistent experimental conclusions often come
from sloppy inputs (e.g. probabilities stored as floats vs doubles, items
duplicated within a transaction).  :func:`validate_database` performs the
checks a uniform benchmarking framework should enforce before any miner
touches the data, and returns a structured report instead of raising so the
evaluation harness can log warnings without aborting a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .database import UncertainDatabase

__all__ = ["ValidationIssue", "ValidationReport", "validate_database"]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem discovered during validation."""

    severity: str  # "error" or "warning"
    tid: int  # -1 for database-level issues
    message: str


@dataclass
class ValidationReport:
    """The outcome of validating a database."""

    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> List[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity == "error"]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [issue for issue in self.issues if issue.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings are tolerated)."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise ``ValueError`` summarising the errors, if any."""
        if self.errors:
            summary = "; ".join(
                f"tid={issue.tid}: {issue.message}" for issue in self.errors
            )
            raise ValueError(f"invalid uncertain database: {summary}")


def validate_database(
    database: UncertainDatabase,
    low_probability_threshold: float = 1e-9,
    warn_on_empty: bool = True,
) -> ValidationReport:
    """Check structural and probabilistic sanity of ``database``.

    Errors
        * probabilities outside ``[0, 1]`` (cannot normally happen because
          transactions validate on construction, but guards against direct
          mutation of ``units``),
        * duplicate transaction identifiers.

    Warnings
        * empty transactions (legal but often a sign of over-aggressive
          trimming),
        * probabilities below ``low_probability_threshold`` that contribute
          nothing but still cost time in every scan,
        * an empty database.
    """
    report = ValidationReport()

    if len(database) == 0:
        report.issues.append(
            ValidationIssue("warning", -1, "database contains no transactions")
        )
        return report

    seen_tids = set()
    for transaction in database:
        if transaction.tid in seen_tids:
            report.issues.append(
                ValidationIssue("error", transaction.tid, "duplicate transaction identifier")
            )
        seen_tids.add(transaction.tid)

        if warn_on_empty and len(transaction) == 0:
            report.issues.append(
                ValidationIssue("warning", transaction.tid, "empty transaction")
            )
        for item, probability in transaction.units.items():
            if not 0.0 <= probability <= 1.0:
                report.issues.append(
                    ValidationIssue(
                        "error",
                        transaction.tid,
                        f"item {item} has probability {probability} outside [0, 1]",
                    )
                )
            elif probability < low_probability_threshold:
                report.issues.append(
                    ValidationIssue(
                        "warning",
                        transaction.tid,
                        f"item {item} has negligible probability {probability}",
                    )
                )
    return report
