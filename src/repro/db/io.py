"""Reading and writing uncertain databases as text files.

Two interchange formats are supported:

``uncertain`` format (native)
    One transaction per line; each unit written as ``item:probability``
    separated by whitespace, e.g. ``3:0.8 17:0.25 42:1.0``.  This mirrors the
    way the paper's Table 1 presents an uncertain database.

``fimi`` format (deterministic)
    The classic FIMI repository layout — one transaction per line, items as
    whitespace-separated integers, no probabilities.  The paper builds its
    benchmarks by taking FIMI datasets and *assigning* probabilities to each
    item occurrence; :func:`read_fimi` therefore accepts a probability model
    from :mod:`repro.datasets.probability` to perform the same assignment.

Malformed input raises :class:`ValueError` carrying the source description
and 1-based line number alongside the offending token, so a bad record in a
million-line file is locatable without bisection.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Iterator, List, Optional, TextIO, Union

from .database import UncertainDatabase

__all__ = [
    "read_uncertain",
    "write_uncertain",
    "read_fimi",
    "write_fimi",
    "parse_uncertain_line",
    "format_uncertain_line",
]

PathOrFile = Union[str, os.PathLike, TextIO]


def _open_for_read(source: PathOrFile):
    if hasattr(source, "read"):
        return source, False
    return open(source, "r", encoding="utf-8"), True


def _open_for_write(target: PathOrFile):
    if hasattr(target, "write"):
        return target, False
    return open(target, "w", encoding="utf-8"), True


def _describe_source(source: PathOrFile) -> str:
    """A human-readable source label for parse errors (path or handle name)."""
    if hasattr(source, "read"):
        return getattr(source, "name", None) or f"<{type(source).__name__}>"
    return os.fspath(source)


def parse_uncertain_line(line: str) -> Dict[int, float]:
    """Parse one ``item:probability`` line into a unit dictionary."""
    units: Dict[int, float] = {}
    for token in line.split():
        item_text, _, probability_text = token.partition(":")
        if not probability_text:
            raise ValueError(f"malformed unit {token!r}: expected item:probability")
        try:
            item = int(item_text)
        except ValueError:
            raise ValueError(
                f"malformed unit {token!r}: item {item_text!r} is not an integer"
            ) from None
        try:
            probability = float(probability_text)
        except ValueError:
            raise ValueError(
                f"malformed unit {token!r}: probability "
                f"{probability_text!r} is not a number"
            ) from None
        units[item] = probability
    return units


def format_uncertain_line(units: Dict[int, float], precision: int = 6) -> str:
    """Format a unit dictionary as one ``item:probability`` line."""
    return " ".join(
        f"{item}:{probability:.{precision}g}" for item, probability in sorted(units.items())
    )


def read_uncertain(source: PathOrFile, name: str = "") -> UncertainDatabase:
    """Read a database written in the native ``item:probability`` format.

    Raises:
        ValueError: On a malformed line, annotated with the source and the
            1-based line number of the offending record.
    """
    handle, should_close = _open_for_read(source)
    try:
        records: List[Dict[int, float]] = []
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                records.append(parse_uncertain_line(line))
            except ValueError as error:
                raise ValueError(
                    f"{_describe_source(source)}, line {line_number}: {error}"
                ) from None
    finally:
        if should_close:
            handle.close()
    return UncertainDatabase.from_records(records, name=name)


def write_uncertain(database: UncertainDatabase, target: PathOrFile, precision: int = 6) -> None:
    """Write ``database`` in the native ``item:probability`` format."""
    handle, should_close = _open_for_write(target)
    try:
        for transaction in database:
            handle.write(format_uncertain_line(transaction.units, precision))
            handle.write("\n")
    finally:
        if should_close:
            handle.close()


def _iterate_fimi(handle: Iterable[str], source: PathOrFile) -> Iterator[List[int]]:
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            yield [int(token) for token in line.split()]
        except ValueError:
            bad = next(
                token for token in line.split() if not _is_integer_token(token)
            )
            raise ValueError(
                f"{_describe_source(source)}, line {line_number}: malformed "
                f"FIMI item {bad!r}: expected an integer"
            ) from None


def _is_integer_token(token: str) -> bool:
    try:
        int(token)
    except ValueError:
        return False
    return True


def read_fimi(
    source: PathOrFile,
    probability_model: Optional[Callable[[int, int], float]] = None,
    name: str = "",
) -> UncertainDatabase:
    """Read a deterministic FIMI file and turn it into an uncertain database.

    Parameters
    ----------
    source:
        Path or open handle of a FIMI-format transaction file.
    probability_model:
        Callable ``(tid, item) -> probability`` used to assign an existence
        probability to every occurrence, replicating the paper's methodology
        of layering Gaussian or Zipf probabilities over deterministic
        benchmarks.  When omitted, every occurrence gets probability 1.0 and
        the result behaves like a deterministic database.
    """
    handle, should_close = _open_for_read(source)
    try:
        records: List[Dict[int, float]] = []
        for tid, items in enumerate(_iterate_fimi(handle, source)):
            if probability_model is None:
                records.append({item: 1.0 for item in items})
            else:
                records.append({item: probability_model(tid, item) for item in items})
    finally:
        if should_close:
            handle.close()
    return UncertainDatabase.from_records(records, name=name)


def write_fimi(database: UncertainDatabase, target: PathOrFile) -> None:
    """Write only the item structure of ``database`` in FIMI format.

    Probabilities are discarded; this is useful for comparing against
    deterministic miners or exporting generated benchmarks.
    """
    handle, should_close = _open_for_write(target)
    try:
        for transaction in database:
            handle.write(" ".join(str(item) for item in sorted(transaction.units)))
            handle.write("\n")
    finally:
        if should_close:
            handle.close()
