"""Bidirectional mapping between item labels and integer identifiers.

The mining algorithms operate on dense integer item identifiers for speed.
Real datasets (FIMI text files, sensor readings, market baskets) name items
with arbitrary strings; a :class:`Vocabulary` records the correspondence so
results can be reported with the original labels.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["Vocabulary"]


class Vocabulary:
    """Assigns stable integer identifiers to item labels.

    Identifiers are handed out in first-seen order starting at zero, which
    keeps them dense — an assumption several data structures (bitmap style
    candidate hashing in UApriori, head tables in UH-Mine) rely on.
    """

    def __init__(self, labels: Optional[Iterable[str]] = None) -> None:
        self._label_to_id: Dict[str, int] = {}
        self._id_to_label: List[str] = []
        if labels is not None:
            for label in labels:
                self.add(label)

    def __len__(self) -> int:
        return len(self._id_to_label)

    def __contains__(self, label: str) -> bool:
        return label in self._label_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_label)

    def add(self, label: str) -> int:
        """Return the identifier for ``label``, creating one if needed."""
        label = str(label)
        existing = self._label_to_id.get(label)
        if existing is not None:
            return existing
        item_id = len(self._id_to_label)
        self._label_to_id[label] = item_id
        self._id_to_label.append(label)
        return item_id

    def id_of(self, label: str) -> int:
        """Return the identifier of ``label``; raise ``KeyError`` if unknown."""
        return self._label_to_id[str(label)]

    def label_of(self, item_id: int) -> str:
        """Return the label of ``item_id``; raise ``IndexError`` if unknown."""
        if item_id < 0:
            raise IndexError(f"item identifiers are non-negative, got {item_id}")
        return self._id_to_label[item_id]

    def labels_of(self, item_ids: Iterable[int]) -> List[str]:
        """Return the labels for a sequence of identifiers."""
        return [self.label_of(item_id) for item_id in item_ids]

    def to_dict(self) -> Dict[str, int]:
        """Return a copy of the label -> identifier mapping."""
        return dict(self._label_to_id)
