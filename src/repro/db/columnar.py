"""Columnar probability store: the vectorized backend of the database.

The row-object representation (:class:`~repro.db.transaction.UncertainTransaction`
dictionaries) is convenient for construction and IO but makes every
probability query a Python loop over ``N`` transactions.  A
:class:`ColumnarView` re-materialises the same database as CSR-style
per-item columns — for every item, the NumPy arrays of the transaction
indices containing it and the matching existence probabilities — so that

* per-item statistics become a handful of NumPy reductions,
* the probability vector ``p_i(X)`` of an itemset becomes a sparse sorted
  intersection of columns with an elementwise product, and
* a whole Apriori level of candidates is evaluated in one
  :meth:`batch_vectors` call that reuses shared prefix intersections
  (candidates produced by the Apriori join share their ``k - 1``-prefix by
  construction).

Per-transaction products are accumulated in itemset order, exactly like the
row backend, so the non-zero probabilities are bitwise identical between
the two backends; only full-vector reductions may differ in the last ulp
(different summation orders).

Because every per-transaction product is row-local, a view can also be
:meth:`sliced by row range <ColumnarView.slice_rows>` into independent
shards whose results concatenate back bitwise — the primitive behind the
partition-parallel engine (:mod:`repro.db.partition`).

>>> from repro.db import UncertainDatabase
>>> db = UncertainDatabase.from_records([{1: 0.5, 2: 0.8}, {1: 1.0}, {2: 0.4}])
>>> view = db.columnar()
>>> view.expected_support((1,))          # esup(X) = sum_i p_i(X)
1.5
>>> view.itemset_probabilities((1, 2)).tolist()
[0.4, 0.0, 0.0]
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import UncertainDatabase

__all__ = ["ColumnarView", "ItemColumn"]

#: One item column: sorted transaction indices and the matching probabilities.
ItemColumn = Tuple[np.ndarray, np.ndarray]

_EMPTY_COLUMN: ItemColumn = (
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.float64),
)


class ColumnarView:
    """Immutable columnar projection of an :class:`UncertainDatabase`.

    Parameters
    ----------
    database:
        The database to project.  The view captures the transaction order at
        construction time; databases are effectively immutable so the view
        can be cached on the instance (see :meth:`UncertainDatabase.columnar`).
    """

    def __init__(self, database: "UncertainDatabase") -> None:
        rows_by_item: Dict[int, List[int]] = {}
        probs_by_item: Dict[int, List[float]] = {}
        for row, transaction in enumerate(database):
            for item, probability in transaction.units.items():
                rows_by_item.setdefault(item, []).append(row)
                probs_by_item.setdefault(item, []).append(probability)
        self._n_transactions = len(database)
        self._columns: Dict[int, ItemColumn] = {}
        for item in rows_by_item:
            rows = np.asarray(rows_by_item[item], dtype=np.int64)
            probs = np.asarray(probs_by_item[item], dtype=np.float64)
            # The column arrays are handed out directly (e.g. single-item
            # candidates in batch_columns); freeze them so an in-place write
            # by a consumer raises instead of corrupting the shared cache.
            rows.flags.writeable = False
            probs.flags.writeable = False
            self._columns[item] = (rows, probs)
        #: lazily scattered dense columns, built per item on first dense combine
        self._dense_columns: Dict[int, np.ndarray] = {}

    @classmethod
    def from_columns(
        cls, columns: Dict[int, ItemColumn], n_transactions: int
    ) -> "ColumnarView":
        """Build a view directly from item columns (no database walk).

        Args:
            columns: ``{item: (row_indices, probabilities)}`` with row
                indices sorted ascending within each column.  The arrays
                are adopted as-is (callers hand over ownership).
            n_transactions: Number of rows the columns index into.

        Returns:
            A view equivalent to one built from the matching database.
        """
        view = cls.__new__(cls)
        view._n_transactions = int(n_transactions)
        view._columns = dict(columns)
        view._dense_columns = {}
        return view

    def slice_rows(self, start: int, stop: int) -> "ColumnarView":
        """An independent view of the row range ``[start, stop)``.

        Row indices are re-based to the slice, so the shard is a
        self-contained columnar database of ``stop - start`` transactions.
        Because per-transaction products are row-local, any candidate's
        compressed probability vector over the shard is exactly the
        corresponding slice of its full-view vector — the exactness
        guarantee the partition-parallel engine builds on.

        Args:
            start: First row (inclusive), ``0 <= start <= stop``.
            stop: Last row (exclusive), ``stop <= n_transactions``.

        Returns:
            A new :class:`ColumnarView` over the selected rows.

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{1: 0.5}, {1: 1.0}, {1: 0.2}])
        >>> db.columnar().slice_rows(1, 3).itemset_probabilities((1,)).tolist()
        [1.0, 0.2]
        """
        if not 0 <= start <= stop <= self._n_transactions:
            raise ValueError(
                f"invalid row range [{start}, {stop}) for {self._n_transactions} rows"
            )
        columns: Dict[int, ItemColumn] = {}
        for item, (rows, probs) in self._columns.items():
            lo = int(np.searchsorted(rows, start, side="left"))
            hi = int(np.searchsorted(rows, stop, side="left"))
            if lo == hi:
                continue
            sub_rows = rows[lo:hi] - start
            sub_probs = probs[lo:hi]
            sub_rows.flags.writeable = False
            columns[item] = (sub_rows, sub_probs)
        return ColumnarView.from_columns(columns, stop - start)

    # -- shape -------------------------------------------------------------------------
    @property
    def n_transactions(self) -> int:
        return self._n_transactions

    def __len__(self) -> int:
        return self._n_transactions

    def items(self) -> List[int]:
        """The sorted distinct items of the database."""
        return sorted(self._columns)

    def column(self, item: int) -> ItemColumn:
        """Return the ``(row_indices, probabilities)`` column of ``item``.

        Items absent from the database yield a pair of empty arrays, so the
        sparse algebra below needs no special-casing.
        """
        return self._columns.get(item, _EMPTY_COLUMN)

    def nnz(self) -> int:
        """Total number of stored units (non-zero probabilities)."""
        return sum(len(rows) for rows, _ in self._columns.values())

    # -- item statistics ---------------------------------------------------------------
    def item_statistics(self) -> Dict[int, Tuple[float, float]]:
        """Expected support and variance of every single item.

        Implements Definition 1 of the paper per item: ``esup({x}) =
        sum_i p_i(x)`` and, since the support is a sum of independent
        Bernoulli variables, ``Var[sup({x})] = sum_i p_i(x)(1 - p_i(x))``.

        Returns:
            ``{item: (expected_support, variance)}`` for every item that
            occurs in the database.

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{7: 0.5}, {7: 0.5}])
        >>> stats = db.columnar().item_statistics()
        >>> stats[7]
        (1.0, 0.5)
        """
        return {
            item: (
                float(probs.sum()),
                float((probs * (1.0 - probs)).sum()),
            )
            for item, (_, probs) in self._columns.items()
        }

    def item_probabilities(self, item: int) -> np.ndarray:
        """Dense per-transaction probability vector of a single item."""
        return self._dense_column(item).copy()

    def rows_as_ordered_units(
        self, item_order: Dict[int, int]
    ) -> List[List[Tuple[int, float]]]:
        """Reconstruct per-transaction ``(item, probability)`` lists in rank order.

        Walking the columns by ascending ``item_order`` rank appends each
        row's units already sorted, so consumers that need rank-ordered
        transactions (the UH-Struct and UFP-tree builders) skip the
        per-transaction sort.  Rows without any ordered item come back as
        empty lists so indices stay aligned with transaction positions.
        """
        units_per_row: List[List[Tuple[int, float]]] = [
            [] for _ in range(self._n_transactions)
        ]
        for item in sorted(item_order, key=item_order.__getitem__):
            rows, probs = self.column(item)
            for row, probability in zip(rows.tolist(), probs.tolist()):
                units_per_row[row].append((item, probability))
        return units_per_row

    # -- sparse itemset algebra --------------------------------------------------------
    def itemset_column(self, itemset: Iterable[int]) -> ItemColumn:
        """Compressed ``(rows, probabilities)`` of an itemset.

        Implements the independence model of Equation (1) of the paper:
        ``p_i(X) = prod_{x in X} p_i(x)``, evaluated only on the rows that
        contain every member of ``X``.

        Args:
            itemset: The items of ``X`` (any iterable; order defines the
                multiplication order, which matches the row backend).

        Returns:
            ``(rows, probabilities)``: the sorted transaction indices
            containing all of ``X`` and the matching per-transaction
            products.

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{1: 0.5, 2: 0.8}, {1: 1.0}])
        >>> rows, probs = db.columnar().itemset_column((1, 2))
        >>> rows.tolist(), probs.tolist()
        ([0], [0.4])
        """
        items = tuple(itemset)
        if not items:
            return (
                np.arange(self._n_transactions, dtype=np.int64),
                np.ones(self._n_transactions, dtype=np.float64),
            )
        rows, probs = self.column(items[0])
        for item in items[1:]:
            rows, probs = self._combine(rows, probs, item)
            if len(rows) == 0:
                break
        return rows, probs

    def itemset_probabilities(self, itemset: Iterable[int]) -> np.ndarray:
        """Dense per-transaction probability vector ``p_i(X)`` of ``itemset``."""
        rows, probs = self.itemset_column(itemset)
        dense = np.zeros(self._n_transactions, dtype=np.float64)
        dense[rows] = probs
        return dense

    def itemset_probability_vector(self, itemset: Iterable[int]) -> np.ndarray:
        """The non-zero per-transaction probabilities of ``itemset``."""
        return self.itemset_column(itemset)[1]

    def expected_support(self, itemset: Iterable[int]) -> float:
        """Expected support ``esup(X) = sum_i p_i(X)`` (Definition 1).

        Args:
            itemset: The items of ``X``.

        Returns:
            The expected support as a float (one vectorized reduction).

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{1: 0.5}, {1: 0.25}])
        >>> db.columnar().expected_support((1,))
        0.75
        """
        return float(self.itemset_column(itemset)[1].sum())

    def support_variance(self, itemset: Iterable[int]) -> float:
        """Support variance ``Var[sup(X)] = sum_i p_i(X)(1 - p_i(X))``.

        The per-transaction occurrences are independent Bernoulli trials,
        so the variance of their sum is the sum of Bernoulli variances —
        the second moment behind the paper's Normal approximation.

        Args:
            itemset: The items of ``X``.

        Returns:
            The variance of the support as a float.

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{1: 0.5}, {1: 1.0}])
        >>> db.columnar().support_variance((1,))
        0.25
        """
        probs = self.itemset_column(itemset)[1]
        return float((probs * (1.0 - probs)).sum())

    # -- batched level evaluation ------------------------------------------------------
    def batch_columns(
        self, candidates: Sequence[Tuple[int, ...]]
    ) -> List[ItemColumn]:
        """Evaluate one Apriori level of candidates with shared prefix reuse.

        Candidates are canonical sorted tuples.  Intersections are memoised
        per call on every proper prefix, so the ``k - 1``-prefix shared by
        joined candidates is computed once per prefix rather than once per
        candidate.  The cache lives only for the duration of the call; its
        size is bounded by the number of distinct prefixes of the level.
        """
        cache: Dict[Tuple[int, ...], ItemColumn] = {}

        def resolve(itemset: Tuple[int, ...]) -> ItemColumn:
            if len(itemset) == 1:
                return self.column(itemset[0])
            hit = cache.get(itemset)
            if hit is None:
                prefix_rows, prefix_probs = resolve(itemset[:-1])
                hit = self._combine(prefix_rows, prefix_probs, itemset[-1])
                cache[itemset] = hit
            return hit

        return [resolve(tuple(candidate)) for candidate in candidates]

    def batch_vectors(self, candidates: Sequence[Tuple[int, ...]]) -> List[np.ndarray]:
        """The compressed probability vectors of a whole candidate level.

        Args:
            candidates: Canonical sorted tuples, typically one Apriori level.

        Returns:
            One zeros-omitted ``p_i(X)`` vector per candidate, in candidate
            order (the input every :class:`~repro.core.support.SupportEngine`
            batch consumes).

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{1: 0.5, 2: 0.8}, {2: 1.0}])
        >>> [v.tolist() for v in db.columnar().batch_vectors([(1,), (2,), (1, 2)])]
        [[0.5], [0.8, 1.0], [0.4]]
        """
        return [probs for _, probs in self.batch_columns(candidates)]

    def batch_probabilities(self, candidates: Sequence[Tuple[int, ...]]) -> np.ndarray:
        """Dense probability matrix, one row per candidate."""
        matrix = np.zeros((len(candidates), self._n_transactions), dtype=np.float64)
        for index, (rows, probs) in enumerate(self.batch_columns(candidates)):
            matrix[index, rows] = probs
        return matrix


    # -- intersection kernels ----------------------------------------------------------
    def _dense_column(self, item: int) -> np.ndarray:
        """Dense (N,) probability vector of ``item``, scattered once and cached."""
        dense = self._dense_columns.get(item)
        if dense is None:
            dense = np.zeros(self._n_transactions, dtype=np.float64)
            rows, probs = self.column(item)
            dense[rows] = probs
            dense.flags.writeable = False
            self._dense_columns[item] = dense
        return dense

    def _combine(self, rows: np.ndarray, probs: np.ndarray, item: int) -> ItemColumn:
        """Intersect a running (rows, probs) pair with the column of ``item``.

        Two kernels, both producing bitwise-identical probabilities: a dense
        elementwise product when the operands cover a sizeable fraction of
        the database (one O(N) multiply beats sorting-based set operations on
        dense data), and a sorted-merge ``searchsorted`` intersection that
        keeps the cost proportional to the occurrence counts on sparse data.
        """
        other_rows, other_probs = self.column(item)
        if len(rows) == 0 or len(other_rows) == 0:
            return _EMPTY_COLUMN
        if len(rows) + len(other_rows) >= self._n_transactions // 4:
            dense = np.zeros(self._n_transactions, dtype=np.float64)
            dense[rows] = probs
            product = dense * self._dense_column(item)
            out_rows = np.nonzero(product)[0]
            return out_rows, product[out_rows]
        if len(rows) > len(other_rows):
            # Probe the smaller operand into the larger; the product order
            # (running probability times item probability) is preserved.
            positions = np.searchsorted(rows, other_rows)
            positions[positions == len(rows)] = 0
            mask = rows[positions] == other_rows
            return other_rows[mask], probs[positions[mask]] * other_probs[mask]
        positions = np.searchsorted(other_rows, rows)
        positions[positions == len(other_rows)] = 0
        mask = other_rows[positions] == rows
        return rows[mask], probs[mask] * other_probs[positions[mask]]
