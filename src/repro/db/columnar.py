"""Columnar probability store: the vectorized backend of the database.

The row-object representation (:class:`~repro.db.transaction.UncertainTransaction`
dictionaries) is convenient for construction and IO but makes every
probability query a Python loop over ``N`` transactions.  A
:class:`ColumnarView` re-materialises the same database as CSR-style
per-item columns — for every item, the NumPy arrays of the transaction
indices containing it and the matching existence probabilities — so that

* per-item statistics become a handful of NumPy reductions,
* the probability vector ``p_i(X)`` of an itemset becomes a sparse sorted
  intersection of columns with an elementwise product, and
* a whole Apriori level of candidates is evaluated in one
  :meth:`batch_vectors` call that reuses shared prefix intersections
  (candidates produced by the Apriori join share their ``k - 1``-prefix by
  construction).

Per-transaction products are accumulated in itemset order, exactly like the
row backend, so the non-zero probabilities are bitwise identical between
the two backends; only full-vector reductions may differ in the last ulp
(different summation orders).

Because every per-transaction product is row-local, a view can also be
:meth:`sliced by row range <ColumnarView.slice_rows>` into independent
shards whose results concatenate back bitwise — the primitive behind the
partition-parallel engine (:mod:`repro.db.partition`).

Level evaluation additionally runs through the **bitset cascade** (gated by
``--bitset`` / the ``REPRO_BITSET`` environment variable, default on):
per-item occupancy is packed into bitmaps (:meth:`ColumnarView.item_bitmap`),
a whole level's supporting-row counts come from word-wide bitwise AND +
popcount (:meth:`ColumnarView.level_occupancy_counts`), candidates whose
count is already below the caller's ``minsup`` are killed before any float
work, and the survivors resolve their ``k - 1``-prefixes through a
cross-level byte-budgeted LRU so each costs one gather-and-multiply.  The
float kernels are untouched, so cascade results are bitwise identical to
the recursive path.

>>> from repro.db import UncertainDatabase
>>> db = UncertainDatabase.from_records([{1: 0.5, 2: 0.8}, {1: 1.0}, {2: 0.4}])
>>> view = db.columnar()
>>> view.expected_support((1,))          # esup(X) = sum_i p_i(X)
1.5
>>> view.itemset_probabilities((1, 2)).tolist()
[0.4, 0.0, 0.0]
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..plan.spec import ExecutionPlan, plan_scope, resolve_knob
from .cache import ByteBudgetLRU

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import UncertainDatabase

__all__ = [
    "ColumnarView",
    "ItemColumn",
    "BITSET_ENV",
    "resolve_bitset",
    "bitset_scope",
    "DENSE_CROSSOVER_FRACTION",
    "resolve_dense_crossover",
    "popcount_rows",
]

#: One item column: sorted transaction indices and the matching probabilities.
ItemColumn = Tuple[np.ndarray, np.ndarray]

_EMPTY_COLUMN: ItemColumn = (
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.float64),
)
_EMPTY_COLUMN[0].flags.writeable = False
_EMPTY_COLUMN[1].flags.writeable = False

#: environment variable gating the bitset evaluation cascade (default on)
BITSET_ENV = "REPRO_BITSET"

_BITSET_TRUE = ("", "1", "on", "true", "yes")
_BITSET_FALSE = ("0", "off", "false", "no")

#: Fraction of the database size above which :meth:`ColumnarView._combine`
#: switches from the sorted ``searchsorted`` merge to the dense elementwise
#: product.  Measured on this implementation (see
#: ``benchmarks/bench_bitset_cascade.py``, which reports the crossover
#: sweep): with the two operand occupancies summing to ~15-35% of ``N`` the
#: two kernels are within noise of each other, below that the sparse merge
#: wins by the ratio of occupancy to ``N``, above it the single O(N)
#: multiply wins because it avoids the searchsorted log-factor and the mask
#: gathers.  0.25 sits in the indifference band across N in [2e3, 1e5].
#: Now the plan default of the ``dense_crossover`` knob; this module-level
#: constant is kept as the historical name for the same value.
DENSE_CROSSOVER_FRACTION = 0.25


def resolve_dense_crossover(value: Optional[float] = None) -> float:
    """Resolve the sparse-vs-dense combine crossover fraction (plan knob)."""
    return resolve_knob("dense_crossover", value)

def popcount_rows(packed: np.ndarray) -> np.ndarray:
    """Per-row population count of a packed ``(rows, width)`` uint8 bitmap.

    Rows are zero-padded to a multiple of 8 bytes, reinterpreted as uint64
    words and counted with the branch-free SWAR reduction — ~4x faster
    than a 256-entry byte lookup table on whole-level bitmaps (measured in
    ``benchmarks/bench_bitset_cascade.py``).

    >>> popcount_rows(np.array([[0b10110000], [0b11111111]], dtype=np.uint8)).tolist()
    [3, 8]
    """
    n_rows, width = packed.shape
    pad = (-width) % 8
    if pad:
        padded = np.zeros((n_rows, width + pad), dtype=np.uint8)
        padded[:, :width] = packed
    else:
        padded = np.ascontiguousarray(packed)
    words = padded.view(np.uint64)
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    words = words - ((words >> np.uint64(1)) & m1)
    words = (words & m2) + ((words >> np.uint64(2)) & m2)
    words = (words + (words >> np.uint64(4))) & m4
    return ((words * h01) >> np.uint64(56)).sum(axis=1).astype(np.int64)


def resolve_bitset(value: Optional[Union[bool, str]] = None) -> bool:
    """Resolve the bitset-cascade knob.

    Args:
        value: Explicit setting — a bool, or one of ``on/off/true/false/
            1/0/yes/no`` — or ``None`` to consult the ``REPRO_BITSET``
            environment variable (missing/empty means **on**: the cascade
            is byte-identical to the recursive path, only faster).

    Returns:
        Whether the bitset evaluation cascade is enabled.

    >>> resolve_bitset(True), resolve_bitset("off"), resolve_bitset("1")
    (True, False, True)
    """
    return resolve_knob("bitset", value)


@contextmanager
def bitset_scope(value: Optional[Union[bool, str]]):
    """Pin the bitset default for the current context (``None`` = no-op).

    A thin wrapper around :func:`repro.plan.spec.plan_scope` kept for the
    historical calling convention.  Unlike the pre-plan implementation this
    no longer mutates ``os.environ``, so concurrent threads (the mining
    service's request executors) never observe each other's setting.
    """
    if value is None:
        yield
        return
    with plan_scope(ExecutionPlan(bitset=resolve_bitset(value))):
        yield


class ColumnarView:
    """Immutable columnar projection of an :class:`UncertainDatabase`.

    Parameters
    ----------
    database:
        The database to project.  The view captures the transaction order at
        construction time; databases are effectively immutable so the view
        can be cached on the instance (see :meth:`UncertainDatabase.columnar`).

    Subclassing contract
    --------------------
    Every kernel reads columns exclusively through ``self._columns`` (any
    ``Mapping[int, ItemColumn]`` whose arrays are sorted by row and
    read-only) and ``self._n_transactions``; a subclass may therefore swap
    in a lazy mapping — the out-of-core
    :class:`~repro.db.store.MappedColumnarView` resolves columns as
    ``np.memmap`` slices on demand — and inherit the entire evaluation
    cascade, bit for bit.
    """

    def __init__(self, database: "UncertainDatabase") -> None:
        rows_by_item: Dict[int, List[int]] = {}
        probs_by_item: Dict[int, List[float]] = {}
        for row, transaction in enumerate(database):
            for item, probability in transaction.units.items():
                rows_by_item.setdefault(item, []).append(row)
                probs_by_item.setdefault(item, []).append(probability)
        self._n_transactions = len(database)
        self._columns: Dict[int, ItemColumn] = {}
        for item in rows_by_item:
            rows = np.asarray(rows_by_item[item], dtype=np.int64)
            probs = np.asarray(probs_by_item[item], dtype=np.float64)
            # The column arrays are handed out directly (e.g. single-item
            # candidates in batch_columns); freeze them so an in-place write
            # by a consumer raises instead of corrupting the shared cache.
            rows.flags.writeable = False
            probs.flags.writeable = False
            self._columns[item] = (rows, probs)
        self._init_caches()

    def _init_caches(self) -> None:
        """(Re)build the lazily filled, byte-budgeted derived-array caches.

        All three caches memoise pure functions of the immutable columns, so
        dropping them (fresh view, unpickle, eviction) can only cost time,
        never correctness.
        """
        #: lazily scattered dense columns, built per item on first dense combine
        self._dense_columns = ByteBudgetLRU(resolve_knob("dense_cache_bytes"))
        #: packed per-item occupancy bitmaps (stage 1 of the cascade)
        self._bitmaps = ByteBudgetLRU(resolve_knob("bitmap_cache_bytes"))
        #: cross-level prefix columns (stage 2 of the cascade): the frequent
        #: ``k-1``-columns of one level are exactly the join prefixes of the
        #: next, so persisting them across ``batch_columns`` calls turns a
        #: full prefix rebuild into a single gather-and-multiply
        self._prefix_cache = ByteBudgetLRU(resolve_knob("prefix_cache_bytes"))

    # -- pickling ----------------------------------------------------------------------
    def __getstate__(self):
        # Shard views are shipped to worker processes once per pool; the
        # derived-array caches are cheap to rebuild and would only bloat the
        # pickle, so only the authoritative columns travel.
        return {"n_transactions": self._n_transactions, "columns": self._columns}

    def __setstate__(self, state) -> None:
        self._n_transactions = state["n_transactions"]
        self._columns = state["columns"]
        self._init_caches()

    @classmethod
    def from_columns(
        cls, columns: Mapping[int, ItemColumn], n_transactions: int
    ) -> "ColumnarView":
        """Build a view directly from item columns (no database walk).

        Args:
            columns: ``{item: (row_indices, probabilities)}`` with row
                indices sorted ascending within each column.  The arrays
                are adopted as-is (callers hand over ownership) — including
                zero-copy sources such as shared-memory buffer slices.
            n_transactions: Number of rows the columns index into.

        Returns:
            A view equivalent to one built from the matching database.
        """
        view = cls.__new__(cls)
        view._n_transactions = int(n_transactions)
        view._columns = dict(columns)
        view._init_caches()
        return view

    def slice_rows(self, start: int, stop: int) -> "ColumnarView":
        """An independent view of the row range ``[start, stop)``.

        Row indices are re-based to the slice, so the shard is a
        self-contained columnar database of ``stop - start`` transactions.
        Because per-transaction products are row-local, any candidate's
        compressed probability vector over the shard is exactly the
        corresponding slice of its full-view vector — the exactness
        guarantee the partition-parallel engine builds on.

        Args:
            start: First row (inclusive), ``0 <= start <= stop``.
            stop: Last row (exclusive), ``stop <= n_transactions``.

        Returns:
            A new :class:`ColumnarView` over the selected rows.

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{1: 0.5}, {1: 1.0}, {1: 0.2}])
        >>> db.columnar().slice_rows(1, 3).itemset_probabilities((1,)).tolist()
        [1.0, 0.2]
        """
        if not 0 <= start <= stop <= self._n_transactions:
            raise ValueError(
                f"invalid row range [{start}, {stop}) for {self._n_transactions} rows"
            )
        columns: Dict[int, ItemColumn] = {}
        for item, (rows, probs) in self._columns.items():
            lo = int(np.searchsorted(rows, start, side="left"))
            hi = int(np.searchsorted(rows, stop, side="left"))
            if lo == hi:
                continue
            sub_rows = rows[lo:hi] - start
            sub_probs = probs[lo:hi]
            sub_rows.flags.writeable = False
            columns[item] = (sub_rows, sub_probs)
        return ColumnarView.from_columns(columns, stop - start)

    # -- shape -------------------------------------------------------------------------
    @property
    def n_transactions(self) -> int:
        return self._n_transactions

    def __len__(self) -> int:
        return self._n_transactions

    def items(self) -> List[int]:
        """The sorted distinct items of the database."""
        return sorted(self._columns)

    def column(self, item: int) -> ItemColumn:
        """Return the ``(row_indices, probabilities)`` column of ``item``.

        Items absent from the database yield a pair of empty arrays, so the
        sparse algebra below needs no special-casing.
        """
        return self._columns.get(item, _EMPTY_COLUMN)

    def nnz(self) -> int:
        """Total number of stored units (non-zero probabilities)."""
        return sum(len(rows) for rows, _ in self._columns.values())

    # -- item statistics ---------------------------------------------------------------
    def item_statistics(self) -> Dict[int, Tuple[float, float]]:
        """Expected support and variance of every single item.

        Implements Definition 1 of the paper per item: ``esup({x}) =
        sum_i p_i(x)`` and, since the support is a sum of independent
        Bernoulli variables, ``Var[sup({x})] = sum_i p_i(x)(1 - p_i(x))``.

        Returns:
            ``{item: (expected_support, variance)}`` for every item that
            occurs in the database.

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{7: 0.5}, {7: 0.5}])
        >>> stats = db.columnar().item_statistics()
        >>> stats[7]
        (1.0, 0.5)
        """
        return {
            item: (
                float(probs.sum()),
                float((probs * (1.0 - probs)).sum()),
            )
            for item, (_, probs) in self._columns.items()
        }

    def item_probabilities(self, item: int) -> np.ndarray:
        """Dense per-transaction probability vector of a single item."""
        return self._dense_column(item).copy()

    def rows_as_ordered_units(
        self, item_order: Dict[int, int]
    ) -> List[List[Tuple[int, float]]]:
        """Reconstruct per-transaction ``(item, probability)`` lists in rank order.

        Walking the columns by ascending ``item_order`` rank appends each
        row's units already sorted, so consumers that need rank-ordered
        transactions (the UH-Struct and UFP-tree builders) skip the
        per-transaction sort.  Rows without any ordered item come back as
        empty lists so indices stay aligned with transaction positions.
        """
        units_per_row: List[List[Tuple[int, float]]] = [
            [] for _ in range(self._n_transactions)
        ]
        for item in sorted(item_order, key=item_order.__getitem__):
            rows, probs = self.column(item)
            for row, probability in zip(rows.tolist(), probs.tolist()):
                units_per_row[row].append((item, probability))
        return units_per_row

    # -- sparse itemset algebra --------------------------------------------------------
    def itemset_column(self, itemset: Iterable[int]) -> ItemColumn:
        """Compressed ``(rows, probabilities)`` of an itemset.

        Implements the independence model of Equation (1) of the paper:
        ``p_i(X) = prod_{x in X} p_i(x)``, evaluated only on the rows that
        contain every member of ``X``.

        Args:
            itemset: The items of ``X`` (any iterable; order defines the
                multiplication order, which matches the row backend).

        Returns:
            ``(rows, probabilities)``: the sorted transaction indices
            containing all of ``X`` and the matching per-transaction
            products.

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{1: 0.5, 2: 0.8}, {1: 1.0}])
        >>> rows, probs = db.columnar().itemset_column((1, 2))
        >>> rows.tolist(), probs.tolist()
        ([0], [0.4])
        """
        items = tuple(itemset)
        if not items:
            return (
                np.arange(self._n_transactions, dtype=np.int64),
                np.ones(self._n_transactions, dtype=np.float64),
            )
        rows, probs = self.column(items[0])
        for item in items[1:]:
            rows, probs = self._combine(rows, probs, item)
            if len(rows) == 0:
                break
        return rows, probs

    def itemset_probabilities(self, itemset: Iterable[int]) -> np.ndarray:
        """Dense per-transaction probability vector ``p_i(X)`` of ``itemset``."""
        rows, probs = self.itemset_column(itemset)
        dense = np.zeros(self._n_transactions, dtype=np.float64)
        dense[rows] = probs
        return dense

    def itemset_probability_vector(self, itemset: Iterable[int]) -> np.ndarray:
        """The non-zero per-transaction probabilities of ``itemset``."""
        return self.itemset_column(itemset)[1]

    def expected_support(self, itemset: Iterable[int]) -> float:
        """Expected support ``esup(X) = sum_i p_i(X)`` (Definition 1).

        Args:
            itemset: The items of ``X``.

        Returns:
            The expected support as a float (one vectorized reduction).

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{1: 0.5}, {1: 0.25}])
        >>> db.columnar().expected_support((1,))
        0.75
        """
        return float(self.itemset_column(itemset)[1].sum())

    def support_variance(self, itemset: Iterable[int]) -> float:
        """Support variance ``Var[sup(X)] = sum_i p_i(X)(1 - p_i(X))``.

        The per-transaction occurrences are independent Bernoulli trials,
        so the variance of their sum is the sum of Bernoulli variances —
        the second moment behind the paper's Normal approximation.

        Args:
            itemset: The items of ``X``.

        Returns:
            The variance of the support as a float.

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{1: 0.5}, {1: 1.0}])
        >>> db.columnar().support_variance((1,))
        0.25
        """
        probs = self.itemset_column(itemset)[1]
        return float((probs * (1.0 - probs)).sum())

    # -- packed occupancy bitmaps (stage 1 of the cascade) -----------------------------
    def item_bitmap(self, item: int) -> np.ndarray:
        """Packed occupancy bitmap of ``item``: bit ``i`` set iff ``p_i(item) > 0``.

        The bitmap is ``ceil(N / 8)`` bytes (``np.packbits`` layout: bit 7 of
        byte 0 is row 0), built once per item and memoised in a
        byte-budgeted LRU.  Padding bits past row ``N - 1`` are always zero,
        so bitwise ANDs of bitmaps never create phantom rows.
        """
        bitmap = self._bitmaps.get(item)
        if bitmap is None:
            occupied = np.zeros(self._n_transactions, dtype=bool)
            rows, _ = self.column(item)
            occupied[rows] = True
            bitmap = np.packbits(occupied)
            bitmap.flags.writeable = False
            self._bitmaps.put(item, bitmap)
        return bitmap

    def level_bitmaps(self, candidates: Sequence[Tuple[int, ...]]) -> np.ndarray:
        """Packed occupancy of a whole level: one AND-of-members row per candidate.

        Returns:
            A ``(len(candidates), ceil(N / 8))`` uint8 array; row ``c`` is
            the bitwise AND of the member bitmaps of ``candidates[c]`` (an
            empty candidate occupies every row).  The whole level is
            evaluated with word-wide NumPy ANDs — no float work at all.
        """
        candidates = [tuple(candidate) for candidate in candidates]
        width = (self._n_transactions + 7) // 8
        packed = np.empty((len(candidates), width), dtype=np.uint8)
        if not candidates or width == 0:
            return packed
        lengths = np.fromiter(
            (len(candidate) for candidate in candidates),
            dtype=np.int64,
            count=len(candidates),
        )
        if (lengths == 0).any():
            full = np.packbits(np.ones(self._n_transactions, dtype=bool))
            packed[lengths == 0] = full
        distinct = sorted({item for candidate in candidates for item in candidate})
        if not distinct:
            return packed
        stack = np.stack([self.item_bitmap(item) for item in distinct])
        distinct_array = np.asarray(distinct, dtype=np.int64)
        if lengths.min() == lengths.max():
            # One Apriori level: every candidate has the same length, so the
            # member lookup is a single (C, k) searchsorted against the
            # distinct items and the AND reduces over the k id columns.
            members = np.asarray(candidates, dtype=np.int64)
            ids = np.searchsorted(distinct_array, members)
            acc = stack[ids[:, 0]]
            for position in range(1, members.shape[1]):
                acc &= stack[ids[:, position]]
            packed[:] = acc
            return packed
        index = {item: position for position, item in enumerate(distinct)}
        for position in range(int(lengths.max())):
            has = lengths > position
            ids = np.fromiter(
                (
                    index[candidate[position]]
                    for candidate, alive in zip(candidates, has)
                    if alive
                ),
                dtype=np.int64,
                count=int(has.sum()),
            )
            if position == 0:
                packed[has] = stack[ids]
            else:
                packed[has] &= stack[ids]
        return packed

    def level_occupancy_counts(
        self, candidates: Sequence[Tuple[int, ...]]
    ) -> np.ndarray:
        """Supporting-row count of every candidate via bitmap AND + popcount.

        ``counts[c]`` is the number of transactions containing every member
        of ``candidates[c]`` with positive probability — each candidate's
        maximum attainable support, computed without touching a single
        float.  Row-local, so per-shard counts sum to the global count
        exactly (the property the partitioned kill phase relies on).

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{1: 0.5, 2: 0.8}, {1: 1.0}])
        >>> db.columnar().level_occupancy_counts([(1,), (2,), (1, 2)]).tolist()
        [2, 1, 1]
        """
        if not len(candidates):
            return np.zeros(0, dtype=np.int64)
        packed = self.level_bitmaps(candidates)
        if packed.shape[1] == 0:
            return np.zeros(len(candidates), dtype=np.int64)
        return popcount_rows(packed)

    # -- batched level evaluation ------------------------------------------------------
    def batch_columns(
        self,
        candidates: Sequence[Tuple[int, ...]],
        min_count: float = 0.0,
        bitset: Optional[Union[bool, str]] = None,
    ) -> List[ItemColumn]:
        """Evaluate one Apriori level of candidates with shared prefix reuse.

        Candidates are canonical sorted tuples.  With the bitset cascade
        enabled (the default; see :func:`resolve_bitset`), evaluation runs
        in three stages:

        1. when ``min_count > 0``, the whole level's supporting-row counts
           are computed by bitmap AND + popcount and candidates whose count
           is already below ``min_count`` are *killed* — they get the empty
           column without any float work.  Sound for both of the paper's
           definitions: the count is the maximum attainable support, so
           ``count < minsup`` implies ``esup < minsup`` (each probability
           is at most 1) and ``Pr[sup >= minsup] = 0``;
        2. each survivor resolves its ``k - 1``-prefix through the
           cross-level byte-budgeted LRU (the frequent columns of the
           previous level are exactly this level's join prefixes) and pays
           one :meth:`_combine` gather-and-multiply;
        3. the float math itself is the unchanged :meth:`_combine` kernel,
           so survivor columns are bitwise identical to the recursive path.

        With ``bitset`` off, the historical per-call recursion runs instead
        (every candidate evaluated, no cross-call state) — the comparison
        baseline of ``benchmarks/bench_bitset_cascade.py``.
        """
        candidates = [tuple(candidate) for candidate in candidates]
        if not resolve_bitset(bitset):
            return self._batch_columns_recursive(candidates)
        killed = None
        if min_count > 0 and candidates and self._n_transactions:
            killed = self.level_occupancy_counts(candidates) < min_count
        cache: Dict[Tuple[int, ...], ItemColumn] = {}
        results: List[ItemColumn] = []
        for position, candidate in enumerate(candidates):
            if killed is not None and killed[position]:
                results.append(_EMPTY_COLUMN)
            else:
                results.append(self._resolve_cascade(candidate, cache))
        return results

    def _resolve_cascade(
        self, itemset: Tuple[int, ...], cache: Dict[Tuple[int, ...], ItemColumn]
    ) -> ItemColumn:
        """Resolve one candidate column through per-call and cross-level caches.

        Only genuinely computed columns enter the cross-level cache —
        stage-1 kills never do, so a later run with a lower threshold can
        never observe a truncated column.
        """
        if len(itemset) == 0:
            return (
                np.arange(self._n_transactions, dtype=np.int64),
                np.ones(self._n_transactions, dtype=np.float64),
            )
        if len(itemset) == 1:
            return self.column(itemset[0])
        hit = cache.get(itemset)
        if hit is not None:
            return hit
        hit = self._prefix_cache.get(itemset)
        if hit is None:
            prefix_rows, prefix_probs = self._resolve_cascade(itemset[:-1], cache)
            hit = self._combine_gather(prefix_rows, prefix_probs, itemset[-1])
            hit[0].flags.writeable = False
            hit[1].flags.writeable = False
            self._prefix_cache.put(itemset, hit)
        cache[itemset] = hit
        return hit

    def _batch_columns_recursive(
        self, candidates: Sequence[Tuple[int, ...]]
    ) -> List[ItemColumn]:
        """The pre-cascade evaluation: per-call prefix memo, no cross-call state."""
        cache: Dict[Tuple[int, ...], ItemColumn] = {}

        def resolve(itemset: Tuple[int, ...]) -> ItemColumn:
            if len(itemset) == 1:
                return self.column(itemset[0])
            hit = cache.get(itemset)
            if hit is None:
                prefix_rows, prefix_probs = resolve(itemset[:-1])
                hit = self._combine(prefix_rows, prefix_probs, itemset[-1])
                cache[itemset] = hit
            return hit

        return [resolve(tuple(candidate)) for candidate in candidates]

    def batch_vectors(
        self,
        candidates: Sequence[Tuple[int, ...]],
        min_count: float = 0.0,
        bitset: Optional[Union[bool, str]] = None,
    ) -> List[np.ndarray]:
        """The compressed probability vectors of a whole candidate level.

        Args:
            candidates: Canonical sorted tuples, typically one Apriori level.
            min_count: Optional stage-1 kill threshold — candidates whose
                supporting-row count (maximum attainable support) is below
                it come back as empty vectors without any float work.  Only
                pass a threshold the caller's decision rule already implies
                (``minsup`` for the level-wise miners); ``0`` disables
                killing.
            bitset: Cascade override; ``None`` resolves ``REPRO_BITSET``.

        Returns:
            One zeros-omitted ``p_i(X)`` vector per candidate, in candidate
            order (the input every :class:`~repro.core.support.SupportEngine`
            batch consumes).

        >>> from repro.db import UncertainDatabase
        >>> db = UncertainDatabase.from_records([{1: 0.5, 2: 0.8}, {2: 1.0}])
        >>> [v.tolist() for v in db.columnar().batch_vectors([(1,), (2,), (1, 2)])]
        [[0.5], [0.8, 1.0], [0.4]]
        """
        return [
            probs for _, probs in self.batch_columns(candidates, min_count, bitset)
        ]

    def batch_probabilities(self, candidates: Sequence[Tuple[int, ...]]) -> np.ndarray:
        """Dense probability matrix, one row per candidate.

        This materialises the full ``(len(candidates), N)`` float64 matrix
        and exists for consumers that genuinely need per-transaction
        alignment (inspection, the database-level batch API).  The mining
        hot paths never call it: every
        :class:`~repro.core.support.SupportEngine` evaluation — including
        the batched DP recurrence — is fed zeros-omitted vectors and pads
        only to the widest *non-zero* width via
        :func:`~repro.core.support.pack_probability_matrix` (pinned by
        ``tests/test_support_memory.py``).
        """
        matrix = np.zeros((len(candidates), self._n_transactions), dtype=np.float64)
        for index, (rows, probs) in enumerate(self.batch_columns(candidates)):
            matrix[index, rows] = probs
        return matrix


    # -- intersection kernels ----------------------------------------------------------
    def _dense_column(self, item: int) -> np.ndarray:
        """Dense (N,) probability vector of ``item``, scattered once and memoised.

        The memo is byte-budgeted (``REPRO_DENSE_CACHE_BYTES``): a dense
        column costs ``8 * N`` bytes, so an unbounded per-item dictionary
        would pin one full float vector per distinct item forever.  Under
        the LRU, cold items fall out and are rescattered on demand.
        """
        dense = self._dense_columns.get(item)
        if dense is None:
            dense = np.zeros(self._n_transactions, dtype=np.float64)
            rows, probs = self.column(item)
            dense[rows] = probs
            dense.flags.writeable = False
            self._dense_columns.put(item, dense)
        return dense

    def _combine(self, rows: np.ndarray, probs: np.ndarray, item: int) -> ItemColumn:
        """Intersect a running (rows, probs) pair with the column of ``item``.

        Two kernels, both producing bitwise-identical probabilities: a dense
        elementwise product when the operands cover a sizeable fraction of
        the database (one O(N) multiply beats sorting-based set operations on
        dense data), and a sorted-merge ``searchsorted`` intersection that
        keeps the cost proportional to the occurrence counts on sparse data.
        The crossover point is :data:`DENSE_CROSSOVER_FRACTION` of ``N``.
        """
        other_rows, other_probs = self.column(item)
        if len(rows) == 0 or len(other_rows) == 0:
            return _EMPTY_COLUMN
        if len(rows) + len(other_rows) >= int(
            self._n_transactions * resolve_dense_crossover()
        ):
            dense = np.zeros(self._n_transactions, dtype=np.float64)
            dense[rows] = probs
            product = dense * self._dense_column(item)
            out_rows = np.nonzero(product)[0]
            return out_rows, product[out_rows]
        if len(rows) > len(other_rows):
            # Probe the smaller operand into the larger; the product order
            # (running probability times item probability) is preserved.
            positions = np.searchsorted(rows, other_rows)
            positions[positions == len(rows)] = 0
            mask = rows[positions] == other_rows
            return other_rows[mask], probs[positions[mask]] * other_probs[mask]
        positions = np.searchsorted(other_rows, rows)
        positions[positions == len(other_rows)] = 0
        mask = other_rows[positions] == rows
        return rows[mask], probs[mask] * other_probs[positions[mask]]

    def _combine_gather(self, rows: np.ndarray, probs: np.ndarray, item: int) -> ItemColumn:
        """Stage-2 kernel: one gather-and-multiply against a cached prefix.

        The cascade resolves a candidate from its cached ``k - 1``-prefix
        column, so the running ``(rows, probs)`` pair is already compressed;
        against a dense item the product needs only a gather of the item's
        probabilities *at the prefix rows* — ``O(len(rows))`` instead of the
        historical dense kernel's scatter + full-width multiply + ``O(N)``
        non-zero scan.  Sparse items fall back to the same ``searchsorted``
        merge as :meth:`_combine`.

        Every multiplication is ``running * item`` on exactly the operands
        the historical kernels use, and exact-zero products are dropped
        just as the historical dense kernel's non-zero scan drops them, so
        the resulting columns are bitwise identical.
        """
        other_rows, other_probs = self.column(item)
        if len(rows) == 0 or len(other_rows) == 0:
            return _EMPTY_COLUMN
        if len(other_rows) >= int(self._n_transactions * resolve_dense_crossover()):
            product = probs * self._dense_column(item)[rows]
            mask = product != 0.0
            return rows[mask], product[mask]
        if len(rows) > len(other_rows):
            positions = np.searchsorted(rows, other_rows)
            positions[positions == len(rows)] = 0
            mask = rows[positions] == other_rows
            return other_rows[mask], probs[positions[mask]] * other_probs[mask]
        positions = np.searchsorted(other_rows, rows)
        positions[positions == len(other_rows)] = 0
        mask = other_rows[positions] == rows
        return rows[mask], probs[mask] * other_probs[positions[mask]]
