"""Fluent construction of uncertain databases.

The builder keeps examples and tests readable: transactions can be added one
at a time from labelled or integer items, from deterministic item lists plus
a probability model, or copied from the paper's running example (Table 1).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .database import UncertainDatabase
from .transaction import UncertainTransaction
from .vocabulary import Vocabulary

__all__ = ["DatabaseBuilder", "paper_example_database"]

UnitLike = Union[Tuple[str, float], Tuple[int, float]]


class DatabaseBuilder:
    """Incrementally assemble an :class:`~repro.db.database.UncertainDatabase`."""

    def __init__(self, name: str = "") -> None:
        self._name = name
        self._vocabulary = Vocabulary()
        self._records: List[Dict[int, float]] = []
        self._uses_labels = False

    def add_transaction(self, units: Iterable[UnitLike]) -> "DatabaseBuilder":
        """Add one transaction from ``(item, probability)`` pairs.

        Items may be strings (labels) or integers; the two styles must not be
        mixed within one builder.
        """
        record: Dict[int, float] = {}
        for item, probability in units:
            if isinstance(item, str):
                self._uses_labels = True
                record[self._vocabulary.add(item)] = float(probability)
            else:
                if self._uses_labels:
                    raise ValueError("cannot mix labelled and integer items in one builder")
                record[int(item)] = float(probability)
        self._records.append(record)
        return self

    def add_certain_transaction(
        self,
        items: Sequence[Union[str, int]],
        probability_model: Optional[Callable[[int, int], float]] = None,
    ) -> "DatabaseBuilder":
        """Add a deterministic transaction, optionally assigning probabilities.

        ``probability_model`` receives ``(tid, item_id)`` and returns the
        existence probability; when omitted all items are certain (1.0).
        """
        tid = len(self._records)
        units: List[Tuple[Union[str, int], float]] = []
        for item in items:
            if isinstance(item, str):
                item_id = self._vocabulary.add(item)
            else:
                item_id = int(item)
            probability = 1.0 if probability_model is None else probability_model(tid, item_id)
            units.append((item, probability))
        return self.add_transaction(units)

    def build(self) -> UncertainDatabase:
        """Return the assembled database."""
        transactions = [
            UncertainTransaction(tid, units) for tid, units in enumerate(self._records)
        ]
        vocabulary = self._vocabulary if self._uses_labels else None
        return UncertainDatabase(transactions, vocabulary=vocabulary, name=self._name)


def paper_example_database() -> UncertainDatabase:
    """Return the four-transaction example of Table 1 in the paper.

    Used throughout the test-suite because the paper reports hand-checked
    expected supports (A: 2.1, C: 2.6) and the support distribution of A
    (Table 2) for it.
    """
    builder = DatabaseBuilder(name="paper-table-1")
    builder.add_transaction(
        [("A", 0.8), ("B", 0.2), ("C", 0.9), ("D", 0.7), ("F", 0.8)]
    )
    builder.add_transaction([("A", 0.8), ("B", 0.7), ("C", 0.9), ("E", 0.5)])
    builder.add_transaction([("A", 0.5), ("C", 0.8), ("E", 0.8), ("F", 0.3)])
    builder.add_transaction([("B", 0.5), ("D", 0.5), ("F", 0.7)])
    return builder.build()
