"""Byte-budgeted LRU caches for the columnar backend.

The columnar view memoises three kinds of derived arrays — dense per-item
probability columns, packed occupancy bitmaps and cross-level prefix
columns.  All three are pure functions of the (immutable) database, so a
cache hit can never change a result; the only question is how much memory
the memos may pin.  :class:`ByteBudgetLRU` answers it uniformly: every
cache holds at most ``budget_bytes`` of NumPy payload and evicts in strict
least-recently-used order, so one unlucky workload (many distinct items,
deep levels, huge databases) degrades to recomputation instead of
unbounded growth.

Budgets are small-by-default and overridable per process through
environment variables (one knob per cache, documented on the constants
below).

>>> cache = ByteBudgetLRU(budget_bytes=64)
>>> import numpy as np
>>> cache.put("a", np.zeros(4))          # 32 bytes
>>> cache.put("b", np.zeros(4))          # 64 bytes total: at budget
>>> cache.put("c", np.zeros(4))          # evicts "a" (least recently used)
>>> cache.get("a") is None, cache.get("b") is not None
(True, True)
"""

from __future__ import annotations

import mmap
import os
import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional

import numpy as np

__all__ = [
    "ByteBudgetLRU",
    "DENSE_CACHE_BYTES_ENV",
    "PREFIX_CACHE_BYTES_ENV",
    "BITMAP_CACHE_BYTES_ENV",
    "DEFAULT_DENSE_CACHE_BYTES",
    "DEFAULT_PREFIX_CACHE_BYTES",
    "DEFAULT_BITMAP_CACHE_BYTES",
    "MAPPED_CHARGE_BYTES",
    "resolve_budget",
]

#: env override for the dense per-item column memo (bytes)
DENSE_CACHE_BYTES_ENV = "REPRO_DENSE_CACHE_BYTES"
#: env override for the cross-level prefix-column cache (bytes)
PREFIX_CACHE_BYTES_ENV = "REPRO_PREFIX_CACHE_BYTES"
#: env override for the packed occupancy-bitmap cache (bytes)
BITMAP_CACHE_BYTES_ENV = "REPRO_BITMAP_CACHE_BYTES"

#: default budget of the dense-column memo.  One dense column is ``8 * N``
#: bytes, so the default holds ~1000 columns of an N=2000 database — far
#: more than any level-wise run touches — while capping the worst case
#: (millions of rows, thousands of items) at a fixed footprint.
DEFAULT_DENSE_CACHE_BYTES = 16 << 20
#: default budget of the cross-level prefix cache.  A prefix column costs
#: ``16 * nnz`` bytes (rows + probabilities); 32 MiB keeps every frequent
#: level of the benchmark workloads resident across levels.
DEFAULT_PREFIX_CACHE_BYTES = 32 << 20
#: default budget of the occupancy-bitmap cache.  A bitmap is ``N / 8``
#: bytes — 64x smaller than a dense column — so this effectively never
#: evicts on realistic databases and exists as a hard safety bound only.
DEFAULT_BITMAP_CACHE_BYTES = 16 << 20


def resolve_budget(env_name: str, default: int) -> int:
    """Read a byte budget from the environment (missing/empty → default)."""
    raw = os.environ.get(env_name, "").strip()
    if not raw:
        return int(default)
    budget = int(raw)
    if budget < 0:
        raise ValueError(f"{env_name} must be >= 0, got {budget}")
    return budget


#: Nominal charge of a file-backed (memory-mapped) array.  Mapped arrays
#: pin no process heap — their pages live in the OS page cache and are
#: reclaimable under memory pressure — so charging them at ``nbytes`` would
#: make one large mapped column evict an entire cache of genuinely
#: heap-resident arrays.  They are charged a small constant (roughly the
#: bookkeeping footprint of the array header plus its manifest entry)
#: instead.
MAPPED_CHARGE_BYTES = 512


def _is_file_backed(array: np.ndarray) -> bool:
    """Whether ``array``'s storage is an ``mmap`` (e.g. an ``np.memmap`` plane).

    The base chain is walked to the ultimate owner: slices of a memmap are
    file-backed, while ufunc *results* on memmaps (which NumPy wraps in the
    ``np.memmap`` subclass despite owning fresh heap memory) are not.
    """
    base = array.base
    while base is not None:
        if isinstance(base, mmap.mmap):
            return True
        base = getattr(base, "base", None)
    return False


def _payload_nbytes(value: Any) -> int:
    """Byte size of a cached value: an ndarray or a tuple/list of ndarrays.

    Heap-resident arrays are charged their full ``nbytes``; memory-mapped
    arrays are charged :data:`MAPPED_CHARGE_BYTES` (see its docstring).
    Non-array values may opt in by exposing a ``payload_nbytes`` attribute
    (the service layer's warm-dataset and cached-result wrappers do), which
    is taken at face value.
    """
    declared = getattr(value, "payload_nbytes", None)
    if declared is not None and not isinstance(value, np.ndarray):
        return int(declared)
    if isinstance(value, np.ndarray):
        if _is_file_backed(value):
            return MAPPED_CHARGE_BYTES
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_payload_nbytes(part) for part in value)
    return 0


class ByteBudgetLRU:
    """An LRU mapping bounded by the total NumPy payload it retains.

    All operations are thread-safe: a single re-entrant lock guards the
    recency order and the byte accounting.  Without it, two service threads
    interleaving ``put`` could leave ``nbytes`` permanently out of sync with
    the retained entries (the ``pop``/``insert``/evict sequence is not
    atomic), and a ``get`` racing an eviction could ``move_to_end`` a key
    that no longer exists.

    Parameters
    ----------
    budget_bytes:
        Maximum total payload (``ndarray.nbytes``, summed over tuple/list
        values).  ``0`` disables the cache entirely (every ``get`` misses,
        every ``put`` is dropped), which keeps call sites branch-free.
    """

    __slots__ = (
        "budget_bytes",
        "nbytes",
        "hits",
        "misses",
        "evictions",
        "_entries",
        "_lock",
    )

    def __init__(self, budget_bytes: int) -> None:
        self.budget_bytes = int(budget_bytes)
        #: current total payload of the retained values
        self.nbytes = 0
        self.hits = 0
        self.misses = 0
        #: entries dropped by budget pressure (``clear`` and ``pop`` do not
        #: count — only LRU evictions forced by ``put``)
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list:
        """The retained keys, least- to most-recently used (a snapshot)."""
        with self._lock:
            return list(self._entries)

    def peek(self, key: Hashable) -> Optional[Any]:
        """Return the cached value without touching recency or hit counters.

        For index scans (the service result cache walks whole key groups to
        find a filter source): a scan that ``get``-refreshed every candidate
        would promote entries the caller never served.
        """
        with self._lock:
            return self._entries.get(key)

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing its recency) or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value``, evicting least-recently-used entries over budget.

        A value larger than the whole budget is not retained at all (it
        would immediately evict everything else for a single-use entry).
        """
        size = _payload_nbytes(value)
        if size > self.budget_bytes:
            return
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.nbytes -= _payload_nbytes(previous)
            self._entries[key] = value
            self.nbytes += size
            while self.nbytes > self.budget_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self.nbytes -= _payload_nbytes(evicted)
                self.evictions += 1

    def pop(self, key: Hashable) -> Optional[Any]:
        """Remove and return the value cached under ``key`` (``None`` if absent)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self.nbytes -= _payload_nbytes(entry)
            return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.nbytes = 0
