"""The uncertain transaction database substrate.

:class:`UncertainDatabase` is the object every miner in this library
consumes.  It stores :class:`~repro.db.transaction.UncertainTransaction`
records, exposes the probability-vector primitives shared by all eight
algorithms of the paper (per-transaction itemset probabilities, expected
support, support variance) and the shape statistics (density, average
length) the paper uses to characterise its benchmarks (Table 6).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..plan.spec import BACKENDS, resolve_knob
from .columnar import ColumnarView
from .partition import ColumnarPartition
from .transaction import UncertainTransaction
from .vocabulary import Vocabulary

__all__ = ["UncertainDatabase", "DatabaseStats", "BACKENDS", "resolve_backend"]


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve a backend name through the plan pipeline.

    ``None`` walks the remaining tiers — a scoped
    :func:`~repro.plan.spec.plan_scope` plan, the environment
    (``REPRO_BACKEND``, then ``REPRO_PLAN``), and finally
    :attr:`UncertainDatabase.default_backend`.
    """
    return resolve_knob("backend", backend)


class DatabaseStats:
    """Shape statistics of an uncertain database (cf. Table 6 of the paper)."""

    def __init__(
        self,
        n_transactions: int,
        n_items: int,
        average_length: float,
        density: float,
        average_probability: float,
    ) -> None:
        self.n_transactions = n_transactions
        self.n_items = n_items
        self.average_length = average_length
        self.density = density
        self.average_probability = average_probability

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            "DatabaseStats("
            f"n_transactions={self.n_transactions}, n_items={self.n_items}, "
            f"average_length={self.average_length:.2f}, density={self.density:.4f}, "
            f"average_probability={self.average_probability:.3f})"
        )


class UncertainDatabase:
    """An ordered collection of uncertain transactions.

    Parameters
    ----------
    transactions:
        The transactions of the database.  Order is preserved; the dynamic
        programming and divide-and-conquer miners rely on a stable order to
        define the per-transaction Bernoulli variables.
    vocabulary:
        Optional mapping from item labels to the integer identifiers used in
        the transactions.  Databases built programmatically from integer
        items may omit it.
    name:
        Optional human-readable name (used by the evaluation harness when
        reporting results).

    Probability queries accept a ``backend`` argument: ``"rows"`` walks the
    transaction objects (the original pure-Python path, kept as the
    correctness oracle), ``"columnar"`` (the default) evaluates through the
    lazily built, cached :class:`~repro.db.columnar.ColumnarView`.
    """

    #: backend used when a probability query passes ``backend=None``
    default_backend: str = "columnar"

    def __init__(
        self,
        transactions: Iterable[UncertainTransaction],
        vocabulary: Optional[Vocabulary] = None,
        name: str = "",
    ) -> None:
        self._transactions: List[UncertainTransaction] = list(transactions)
        tids = [t.tid for t in self._transactions]
        if len(set(tids)) != len(tids):
            raise ValueError("transaction identifiers must be unique")
        self.vocabulary = vocabulary
        self.name = name
        self._columnar: Optional[ColumnarView] = None
        self._partitions: Dict[int, ColumnarPartition] = {}

    # -- container protocol ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[UncertainTransaction]:
        return iter(self._transactions)

    def __getitem__(self, index: int) -> UncertainTransaction:
        return self._transactions[index]

    @property
    def transactions(self) -> Sequence[UncertainTransaction]:
        """The transactions in database order."""
        return tuple(self._transactions)

    # -- shape statistics -----------------------------------------------------------
    def items(self) -> List[int]:
        """Return the sorted list of distinct items appearing in the database."""
        seen = set()
        for transaction in self._transactions:
            seen.update(transaction.units.keys())
        return sorted(seen)

    def stats(self) -> DatabaseStats:
        """Return shape statistics analogous to Table 6 of the paper."""
        n = len(self._transactions)
        items = self.items()
        n_items = len(items)
        total_units = sum(len(t) for t in self._transactions)
        total_probability = sum(sum(t.units.values()) for t in self._transactions)
        average_length = total_units / n if n else 0.0
        density = average_length / n_items if n_items else 0.0
        average_probability = total_probability / total_units if total_units else 0.0
        return DatabaseStats(n, n_items, average_length, density, average_probability)

    # -- probability primitives -----------------------------------------------------
    def columnar(self) -> ColumnarView:
        """The columnar projection of this database, built lazily and cached."""
        if self._columnar is None:
            self._columnar = ColumnarView(self)
        return self._columnar

    def partition(self, n_shards: int) -> ColumnarPartition:
        """Row-shard the columnar view into ``n_shards`` independent shards.

        Partitions are built lazily from the cached columnar view and
        cached per shard count, so repeated parallel runs over the same
        database reuse the shard views (and the worker pools reuse their
        pickled copies).  See :mod:`repro.db.partition` for the exactness
        guarantees of the split.
        """
        n_shards = int(n_shards)
        partition = self._partitions.get(n_shards)
        if partition is None:
            partition = ColumnarPartition(self.columnar(), n_shards)
            self._partitions[n_shards] = partition
        return partition

    def itemset_probabilities(
        self, itemset: Iterable[int], backend: Optional[str] = None
    ) -> np.ndarray:
        """Return the vector ``p_i(X)`` of per-transaction probabilities of ``itemset``.

        Transactions where the itemset cannot occur contribute zero.  This is
        the shared primitive behind expected support, support variance and the
        exact Poisson-Binomial support distribution.
        """
        itemset = tuple(itemset)
        if resolve_backend(backend) == "columnar":
            return self.columnar().itemset_probabilities(itemset)
        return np.array(
            [t.itemset_probability(itemset) for t in self._transactions], dtype=float
        )

    def itemset_probabilities_batch(
        self,
        candidates: Sequence[Tuple[int, ...]],
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Dense probability matrix of a whole candidate level (one row each).

        With the columnar backend, candidates sharing a ``k - 1``-prefix (as
        every Apriori join output does) reuse the prefix intersection.
        """
        if resolve_backend(backend) == "columnar":
            return self.columnar().batch_probabilities(candidates)
        return np.array(
            [
                [t.itemset_probability(tuple(candidate)) for t in self._transactions]
                for candidate in candidates
            ],
            dtype=float,
        ).reshape(len(candidates), len(self._transactions))

    def item_probabilities(
        self, item: int, backend: Optional[str] = None
    ) -> np.ndarray:
        """Return the per-transaction probability vector of a single item."""
        if resolve_backend(backend) == "columnar":
            return self.columnar().item_probabilities(item)
        return np.array(
            [t.probability(item) for t in self._transactions], dtype=float
        )

    def expected_support(
        self, itemset: Iterable[int], backend: Optional[str] = None
    ) -> float:
        """Return ``esup(X) = sum_i p_i(X)`` (Definition 1 of the paper)."""
        itemset = tuple(itemset)
        if resolve_backend(backend) == "columnar":
            return self.columnar().expected_support(itemset)
        return float(self.itemset_probabilities(itemset, backend="rows").sum())

    def support_variance(
        self, itemset: Iterable[int], backend: Optional[str] = None
    ) -> float:
        """Return ``Var[sup(X)] = sum_i p_i(X)(1 - p_i(X))``.

        The support is a sum of independent Bernoulli variables (one per
        transaction), hence its variance is the sum of the per-transaction
        Bernoulli variances.
        """
        itemset = tuple(itemset)
        if resolve_backend(backend) == "columnar":
            return self.columnar().support_variance(itemset)
        probabilities = self.itemset_probabilities(itemset, backend="rows")
        return float((probabilities * (1.0 - probabilities)).sum())

    # -- transformations ------------------------------------------------------------
    def restricted_to(self, keep: Iterable[int], name: Optional[str] = None) -> "UncertainDatabase":
        """Return a database keeping only the items in ``keep``.

        Empty transactions are preserved so that the transaction count (and
        therefore every ``N * min_sup`` threshold) is unchanged.
        """
        keep_set = set(keep)
        return UncertainDatabase(
            (t.restricted_to(keep_set) for t in self._transactions),
            vocabulary=self.vocabulary,
            name=name if name is not None else self.name,
        )

    def head(self, n_transactions: int, name: Optional[str] = None) -> "UncertainDatabase":
        """Return a database containing only the first ``n_transactions`` records."""
        if n_transactions < 0:
            raise ValueError("n_transactions must be non-negative")
        return UncertainDatabase(
            self._transactions[:n_transactions],
            vocabulary=self.vocabulary,
            name=name if name is not None else self.name,
        )

    def split(self) -> Tuple["UncertainDatabase", "UncertainDatabase"]:
        """Split into two halves (used by divide-and-conquer style consumers)."""
        middle = len(self._transactions) // 2
        left = UncertainDatabase(self._transactions[:middle], self.vocabulary, self.name)
        right = UncertainDatabase(self._transactions[middle:], self.vocabulary, self.name)
        return left, right

    # -- construction helpers -------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Iterable[Dict[int, float]],
        vocabulary: Optional[Vocabulary] = None,
        name: str = "",
    ) -> "UncertainDatabase":
        """Build a database from dictionaries of ``{item: probability}``.

        Transaction identifiers are assigned sequentially from zero.
        """
        transactions = [
            UncertainTransaction(tid, dict(units)) for tid, units in enumerate(records)
        ]
        return cls(transactions, vocabulary=vocabulary, name=name)

    @classmethod
    def from_labelled_records(
        cls, records: Iterable[Dict[str, float]], name: str = ""
    ) -> "UncertainDatabase":
        """Build a database from ``{label: probability}`` records.

        A :class:`~repro.db.vocabulary.Vocabulary` is created on the fly so
        results can be mapped back to the original labels.
        """
        vocabulary = Vocabulary()
        integer_records: List[Dict[int, float]] = []
        for units in records:
            integer_records.append(
                {vocabulary.add(label): probability for label, probability in units.items()}
            )
        return cls.from_records(integer_records, vocabulary=vocabulary, name=name)
