"""Uncertain transaction database substrate.

This package provides the data model every miner consumes: transactions of
``(item, probability)`` units, whole databases with their probability-vector
primitives, text IO, a fluent builder, possible-world sampling, validation
and an out-of-core memory-mapped columnar store (:mod:`repro.db.store`).
"""

from .builder import DatabaseBuilder, paper_example_database
from .cache import ByteBudgetLRU
from .columnar import (
    BITSET_ENV,
    ColumnarView,
    bitset_scope,
    resolve_bitset,
)
from .database import BACKENDS, DatabaseStats, UncertainDatabase, resolve_backend
from .partition import ColumnarPartition, shard_bounds
from .io import read_fimi, read_uncertain, write_fimi, write_uncertain
from .sampling import (
    enumerate_worlds,
    monte_carlo_support,
    sample_world,
    sample_worlds,
    world_count,
)
from .store import (
    STORE_ENV,
    ColumnarStore,
    MappedColumnarView,
    StoreDatabase,
    StoreError,
    resolve_store_path,
)
from .transaction import UncertainTransaction
from .validation import ValidationIssue, ValidationReport, validate_database
from .vocabulary import Vocabulary

__all__ = [
    "BACKENDS",
    "BITSET_ENV",
    "ByteBudgetLRU",
    "ColumnarPartition",
    "ColumnarStore",
    "ColumnarView",
    "DatabaseBuilder",
    "DatabaseStats",
    "MappedColumnarView",
    "STORE_ENV",
    "StoreDatabase",
    "StoreError",
    "UncertainDatabase",
    "UncertainTransaction",
    "ValidationIssue",
    "ValidationReport",
    "Vocabulary",
    "bitset_scope",
    "enumerate_worlds",
    "monte_carlo_support",
    "paper_example_database",
    "read_fimi",
    "read_uncertain",
    "resolve_backend",
    "resolve_bitset",
    "resolve_store_path",
    "sample_world",
    "sample_worlds",
    "shard_bounds",
    "validate_database",
    "world_count",
    "write_fimi",
    "write_uncertain",
]
