"""Row-sharding of the columnar database view.

A :class:`ColumnarPartition` splits a :class:`~repro.db.columnar.ColumnarView`
into ``K`` contiguous row ranges, each materialised as an independent
``ColumnarView`` over re-based row indices.  The split is *exact* in a
strong sense that the parallel mining engine relies on:

* the per-transaction probability products are computed row-locally, so a
  candidate's compressed probability vector over shard ``s`` is precisely
  the slice of its full compressed vector falling into shard ``s``'s row
  range, bit for bit;
* concatenating the per-shard compressed vectors in shard order therefore
  reproduces the unpartitioned vector exactly — and with it every moment,
  tail probability and mining decision derived downstream.

Shards carry no references back to the parent view or database, which makes
them cheap to ship to worker processes (one pickle per shard per pool, via
the :class:`~repro.core.parallel.ParallelExecutor` initializer).

>>> from repro.db import UncertainDatabase
>>> db = UncertainDatabase.from_records(
...     [{1: 0.5, 2: 0.8}, {1: 1.0}, {2: 0.4}, {1: 0.2, 2: 0.9}]
... )
>>> partition = db.partition(2)
>>> [len(shard) for shard in partition.shards]
[2, 2]
>>> partition.batch_vectors([(1,)])[0].tolist()  # == unpartitioned vector
[0.5, 1.0, 0.2]
>>> db.columnar().batch_vectors([(1,)])[0].tolist()
[0.5, 1.0, 0.2]
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .columnar import ColumnarView, resolve_bitset

__all__ = ["ColumnarPartition", "shard_bounds", "two_phase_kill"]

_EMPTY_VECTOR = np.empty(0, dtype=np.float64)
_EMPTY_VECTOR.flags.writeable = False


def two_phase_kill(
    candidates: Sequence[Tuple[int, ...]],
    counts: np.ndarray,
    min_count: float,
    evaluate_alive,
) -> List[np.ndarray]:
    """Shared kill phase of every sharded cascade evaluation.

    A shard must never kill against the global threshold on local evidence,
    so sharded callers first sum per-shard occupancy counts into ``counts``
    and only then kill globally: candidates below ``min_count`` become the
    empty vector, the survivors are evaluated through ``evaluate_alive``
    (serial shard loop or pooled fan-out) and spliced back in candidate
    order.  One implementation, used by both
    :meth:`ColumnarPartition.batch_vectors` and
    :meth:`repro.core.parallel.ParallelExecutor.shard_vectors`, so the two
    paths cannot drift apart.
    """
    alive_mask = counts >= min_count
    alive = [candidate for candidate, keep in zip(candidates, alive_mask) if keep]
    merged = iter(evaluate_alive(alive))
    return [next(merged) if keep else _EMPTY_VECTOR for keep in alive_mask]


def shard_bounds(n_transactions: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal ``[start, stop)`` row ranges covering the database.

    Args:
        n_transactions: Total number of rows to cover.
        n_shards: Requested shard count; clamped to ``n_transactions`` so no
            shard is empty (an empty database yields a single empty shard).

    Returns:
        One ``(start, stop)`` pair per shard, in row order, partitioning
        ``range(n_transactions)``.

    >>> shard_bounds(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    >>> shard_bounds(2, 5)
    [(0, 1), (1, 2)]
    """
    n_transactions = int(n_transactions)
    n_shards = max(1, min(int(n_shards), max(n_transactions, 1)))
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(n_shards):
        size = n_transactions // n_shards + (1 if index < n_transactions % n_shards else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


class ColumnarPartition:
    """``K`` independent row shards of one columnar view.

    Args:
        view: The columnar view to shard.
        n_shards: Requested shard count (clamped so no shard is empty).

    The partition itself also answers level queries by fanning out to its
    shards serially and concatenating — the reference implementation of the
    merge the parallel executor performs across processes.
    """

    def __init__(self, view: ColumnarView, n_shards: int) -> None:
        self._n_transactions = view.n_transactions
        self.bounds = shard_bounds(view.n_transactions, n_shards)
        #: the shard views, in row order
        self.shards: List[ColumnarView] = [
            view.slice_rows(start, stop) for start, stop in self.bounds
        ]

    # -- shape -------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_transactions(self) -> int:
        return self._n_transactions

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    # -- merged level evaluation ---------------------------------------------------
    def level_occupancy_counts(
        self, candidates: Sequence[Tuple[int, ...]]
    ) -> np.ndarray:
        """Global supporting-row counts, summed over per-shard bitmap popcounts.

        Each shard builds and ANDs its own packed occupancy bitmaps over its
        re-based rows; occupancy is row-local, so the per-shard popcounts
        sum to exactly the unpartitioned
        :meth:`~repro.db.columnar.ColumnarView.level_occupancy_counts`.
        """
        candidates = [tuple(candidate) for candidate in candidates]
        totals = np.zeros(len(candidates), dtype=np.int64)
        for shard in self.shards:
            totals += shard.level_occupancy_counts(candidates)
        return totals

    def batch_vectors(
        self,
        candidates: Sequence[Tuple[int, ...]],
        min_count: float = 0.0,
        bitset: Optional[Union[bool, str]] = None,
    ) -> List[np.ndarray]:
        """Compressed probability vectors of a level, merged across shards.

        Per-shard vectors are concatenated in shard order; the result is
        bitwise identical to the unpartitioned
        :meth:`~repro.db.columnar.ColumnarView.batch_vectors`.

        With ``min_count > 0`` and the bitset cascade enabled, the kill
        phase runs in two global steps: per-shard occupancy counts are
        summed first (a candidate may clear ``min_count`` only across
        shards, so no shard may kill locally), then only the surviving
        candidates are evaluated on every shard — the same kill decisions,
        and the same survivor vectors, as the unpartitioned cascade.
        """
        candidates = [tuple(candidate) for candidate in candidates]
        if resolve_bitset(bitset) and min_count > 0 and candidates:
            return two_phase_kill(
                candidates,
                self.level_occupancy_counts(candidates),
                min_count,
                self._merged_vectors,
            )
        return self._merged_vectors(candidates)

    def _merged_vectors(
        self, candidates: Sequence[Tuple[int, ...]]
    ) -> List[np.ndarray]:
        per_shard = [shard.batch_vectors(candidates) for shard in self.shards]
        return [
            np.concatenate([vectors[index] for vectors in per_shard])
            for index in range(len(candidates))
        ]

    def itemset_column(self, itemset) -> Tuple[np.ndarray, np.ndarray]:
        """Merged ``(rows, probabilities)`` of one itemset (rows in global ids)."""
        rows_parts: List[np.ndarray] = []
        probs_parts: List[np.ndarray] = []
        for (start, _), shard in zip(self.bounds, self.shards):
            rows, probs = shard.itemset_column(itemset)
            rows_parts.append(rows + start)
            probs_parts.append(probs)
        return np.concatenate(rows_parts), np.concatenate(probs_parts)
