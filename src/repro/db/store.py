"""Out-of-core columnar store: memory-mapped planes + zero-copy shard fan-out.

The in-RAM :class:`~repro.db.columnar.ColumnarView` keeps every CSR plane as
live NumPy arrays, which caps dataset scale at physical memory and makes
every parallel shard a full pickle through the pool initializer.  This
module removes both limits while preserving the repository's bitwise
contract (rows == columnar == memmap == shared-memory-sharded):

**On-disk layout.**  :meth:`ColumnarStore.save` persists a view into a
directory holding one binary file per CSR plane plus a small JSON manifest::

    manifest.json   format/version, n_transactions, items, offsets,
                    dtypes, per-item statistics, optional vocabulary
    rows.bin        int64   — concatenated per-item row indices
    probs.bin       float64 — concatenated existence probabilities
    bitmaps.bin     uint8   — per-item packed occupancy bitmaps
                              (``np.packbits`` layout, one row per item)

:meth:`ColumnarStore.open` maps the planes with ``np.memmap(mode="r")`` and
returns a :class:`MappedColumnarView` whose columns are resolved as memmap
*slices* on demand — no plane is ever read eagerly, so databases far larger
than RAM stream row ranges through the unchanged bitset cascade while the
OS pages plane data in and out.  The layout is deliberately the cascade's
access pattern: per-item contiguous runs (column gathers are sequential
reads) and precomputed packed bitmaps (stage-1 kills never touch a float).

**Zero-copy fan-out.**  A shard crossing a process boundary travels as an
O(manifest-bytes) descriptor, never as data:

* a :class:`MappedColumnarView` pickles as ``(directory, start, stop)`` and
  re-opens the manifest on arrival (the on-disk case);
* an in-RAM view is packed once into one ``multiprocessing.shared_memory``
  segment (:func:`export_shard_segment`) that every worker attaches to
  read-only (:func:`attach_shard_segment`), so all workers share a single
  physical copy (the in-RAM case).

Both attach paths fail fast with a clear :class:`StoreError` when the
segment or store directory has vanished; segment lifetime is owned by the
coordinating :class:`~repro.core.parallel.ParallelExecutor`, which unlinks
on ``close()``/``terminate()``.

>>> import tempfile
>>> from repro.db import UncertainDatabase
>>> db = UncertainDatabase.from_records([{1: 0.5, 2: 0.8}, {1: 1.0}, {2: 0.4}])
>>> with tempfile.TemporaryDirectory() as directory:
...     store = ColumnarStore.save(db, directory)
...     view = store.view()
...     view.expected_support((1,)) == db.columnar().expected_support((1,))
True
"""

from __future__ import annotations

import json
import os
import secrets
import zlib
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..plan.spec import resolve_knob
from .cache import ByteBudgetLRU
from .columnar import ColumnarView, ItemColumn
from .database import DatabaseStats, UncertainDatabase
from .transaction import UncertainTransaction
from .vocabulary import Vocabulary

__all__ = [
    "ColumnarStore",
    "MappedColumnarView",
    "StoreDatabase",
    "StoreError",
    "StoreWriter",
    "ShardSegment",
    "attach_shard_segment",
    "export_shard_segment",
    "resolve_store_path",
    "STORE_ENV",
    "STORE_VERIFY_ENV",
    "MANIFEST_NAME",
    "MAPPED_CACHE_BYTES_ENV",
    "DEFAULT_MAPPED_CACHE_BYTES",
]

#: environment variable supplying the default store directory (CLI ``--store``)
STORE_ENV = "REPRO_STORE"
#: when truthy, every fresh ``ColumnarStore.open`` checksum-verifies the
#: plane files before returning (reads every byte — a startup cost, paid
#: for integrity; per-process-cached re-opens are not re-verified)
STORE_VERIFY_ENV = "REPRO_STORE_VERIFY"
#: env override for the per-view materialised-column cache of mapped views
MAPPED_CACHE_BYTES_ENV = "REPRO_MAPPED_CACHE_BYTES"
#: default budget of the mapped-column cache.  Full-range columns are memmap
#: slices charged at the nominal mapped rate, so the budget effectively
#: bounds only the re-based row arrays of *sharded* mapped views.
DEFAULT_MAPPED_CACHE_BYTES = 64 << 20

MANIFEST_NAME = "manifest.json"
STORE_FORMAT = "repro-columnar-store"
STORE_VERSION = 1

_PLANE_FILES = {"rows": "rows.bin", "probs": "probs.bin", "bitmaps": "bitmaps.bin"}
_PLANE_DTYPES = {"rows": np.int64, "probs": np.float64, "bitmaps": np.uint8}

#: shared-memory segment layout: 3 int64 header words (n_transactions,
#: n_items, nnz) followed by the items, offsets, rows and probs planes
_SHM_HEADER_BYTES = 24


class StoreError(RuntimeError):
    """A columnar store (or shared-memory segment) is missing or malformed."""


def resolve_store_path(path: Optional[str] = None) -> str:
    """Resolve a store directory: explicit ``path``, else the ``REPRO_STORE`` env."""
    if path:
        return os.fspath(path)
    raw = os.environ.get(STORE_ENV, "").strip()
    if raw:
        return raw
    raise StoreError(f"no store directory given and {STORE_ENV} is not set")


def _native_dtype_strings() -> Dict[str, str]:
    return {key: np.dtype(dtype).str for key, dtype in _PLANE_DTYPES.items()}


def _file_crc32(path: str, chunk_bytes: int = 1 << 20) -> Tuple[int, int]:
    """``(size, CRC-32)`` of a file, streamed in chunks from disk."""
    crc = 0
    nbytes = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
            nbytes += len(chunk)
    return nbytes, crc & 0xFFFFFFFF


class StoreWriter:
    """Streaming store builder: one column in memory at a time.

    Columns must be added in strictly ascending item order (the manifest
    records one contiguous ``[offsets[i], offsets[i+1])`` run per item).
    Used as a context manager, an exception aborts the build — plane files
    are closed and **no manifest is written**, so a partial directory can
    never be opened as a store.

    Building through the writer keeps peak memory at one column (plus one
    ``N``-byte occupancy scratch when bitmaps are enabled), which is what
    lets :mod:`benchmarks.bench_store_fanout` build stores larger than the
    enforced RSS cap.
    """

    def __init__(
        self,
        directory: str,
        n_transactions: int,
        *,
        name: str = "",
        vocabulary: Optional[Sequence[str]] = None,
        with_bitmaps: bool = True,
    ) -> None:
        self.directory = os.fspath(directory)
        self._n_transactions = int(n_transactions)
        if self._n_transactions < 0:
            raise StoreError("n_transactions must be >= 0")
        self._name = name
        self._vocabulary = list(vocabulary) if vocabulary is not None else None
        self._with_bitmaps = bool(with_bitmaps)
        os.makedirs(self.directory, exist_ok=True)
        self._rows_handle = open(os.path.join(self.directory, _PLANE_FILES["rows"]), "wb")
        self._probs_handle = open(os.path.join(self.directory, _PLANE_FILES["probs"]), "wb")
        self._bitmap_handle = (
            open(os.path.join(self.directory, _PLANE_FILES["bitmaps"]), "wb")
            if self._with_bitmaps
            else None
        )
        self._items: List[int] = []
        self._offsets: List[int] = [0]
        self._statistics: List[Tuple[float, float]] = []
        #: running CRC-32 per plane, updated as bytes stream out — the
        #: checksum costs nothing extra at build time (the bytes are in
        #: hand), whereas computing it after the fact would re-read every
        #: plane from disk.
        self._plane_crcs: Dict[str, int] = {"rows": 0, "probs": 0, "bitmaps": 0}
        self._finalized = False
        self._closed = False

    @property
    def n_transactions(self) -> int:
        return self._n_transactions

    def add_column(self, item: int, rows: np.ndarray, probs: np.ndarray) -> None:
        """Append the CSR column of ``item`` (row indices strictly increasing)."""
        if self._closed:
            raise StoreError("writer is closed")
        item = int(item)
        if self._items and item <= self._items[-1]:
            raise StoreError(
                f"columns must be added in ascending item order "
                f"(got {item} after {self._items[-1]})"
            )
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        probs = np.ascontiguousarray(probs, dtype=np.float64)
        if rows.ndim != 1 or probs.ndim != 1 or len(rows) != len(probs):
            raise StoreError("rows and probs must be 1-d arrays of equal length")
        if len(rows):
            if int(rows[0]) < 0 or int(rows[-1]) >= self._n_transactions:
                raise StoreError(
                    f"row indices of item {item} fall outside "
                    f"[0, {self._n_transactions})"
                )
            if len(rows) > 1 and not (np.diff(rows) > 0).all():
                raise StoreError(f"row indices of item {item} must be strictly increasing")
        rows_bytes = rows.tobytes()
        probs_bytes = probs.tobytes()
        self._rows_handle.write(rows_bytes)
        self._probs_handle.write(probs_bytes)
        self._plane_crcs["rows"] = zlib.crc32(rows_bytes, self._plane_crcs["rows"])
        self._plane_crcs["probs"] = zlib.crc32(probs_bytes, self._plane_crcs["probs"])
        if self._bitmap_handle is not None:
            occupied = np.zeros(self._n_transactions, dtype=bool)
            occupied[rows] = True
            bitmap_bytes = np.packbits(occupied).tobytes()
            self._bitmap_handle.write(bitmap_bytes)
            self._plane_crcs["bitmaps"] = zlib.crc32(
                bitmap_bytes, self._plane_crcs["bitmaps"]
            )
        self._items.append(item)
        self._offsets.append(self._offsets[-1] + len(rows))
        self._statistics.append(
            (float(probs.sum()), float((probs * (1.0 - probs)).sum()))
        )

    def _close_handles(self) -> None:
        for handle in (self._rows_handle, self._probs_handle, self._bitmap_handle):
            if handle is not None and not handle.closed:
                handle.close()

    def abort(self) -> None:
        """Close the plane files without writing a manifest (idempotent)."""
        self._close_handles()
        self._closed = True

    def finalize(self) -> "ColumnarStore":
        """Flush the planes, write the manifest atomically and open the store."""
        if self._finalized:
            return ColumnarStore.open(self.directory)
        self._close_handles()
        manifest = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "name": self._name,
            "n_transactions": self._n_transactions,
            "n_items": len(self._items),
            "nnz": self._offsets[-1],
            "bitmap_width": (self._n_transactions + 7) // 8,
            "dtypes": _native_dtype_strings(),
            "planes": {
                "rows": _PLANE_FILES["rows"],
                "probs": _PLANE_FILES["probs"],
                "bitmaps": _PLANE_FILES["bitmaps"] if self._with_bitmaps else None,
            },
            "items": self._items,
            "offsets": self._offsets,
            "item_statistics": [list(stat) for stat in self._statistics],
            "vocabulary": self._vocabulary,
            "checksums": {
                "rows": format(self._plane_crcs["rows"] & 0xFFFFFFFF, "08x"),
                "probs": format(self._plane_crcs["probs"] & 0xFFFFFFFF, "08x"),
                "bitmaps": (
                    format(self._plane_crcs["bitmaps"] & 0xFFFFFFFF, "08x")
                    if self._with_bitmaps
                    else None
                ),
            },
        }
        manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        scratch_path = manifest_path + ".tmp"
        with open(scratch_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        os.replace(scratch_path, manifest_path)
        self._finalized = True
        self._closed = True
        return ColumnarStore.open(self.directory)

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.finalize()


#: per-process cache of opened stores, keyed by real path + manifest stamp so
#: shards of one store share a single manifest parse and memmap set
_OPEN_STORES: Dict[Tuple[str, int, int], "ColumnarStore"] = {}


class ColumnarStore:
    """An opened on-disk columnar store (manifest + lazily mapped planes)."""

    def __init__(self, directory: str, manifest: Dict[str, Any]) -> None:
        self.directory = os.fspath(directory)
        self._manifest = manifest
        self.items: np.ndarray = np.asarray(manifest["items"], dtype=np.int64)
        self.offsets: np.ndarray = np.asarray(manifest["offsets"], dtype=np.int64)
        self.items.flags.writeable = False
        self.offsets.flags.writeable = False
        self._planes: Optional[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]] = None
        self._item_index: Optional[Dict[int, int]] = None

    # -- construction ------------------------------------------------------------
    @classmethod
    def writer(
        cls,
        directory: str,
        n_transactions: int,
        *,
        name: str = "",
        vocabulary: Optional[Sequence[str]] = None,
        with_bitmaps: bool = True,
    ) -> StoreWriter:
        """A streaming :class:`StoreWriter` for building stores column by column."""
        return StoreWriter(
            directory,
            n_transactions,
            name=name,
            vocabulary=vocabulary,
            with_bitmaps=with_bitmaps,
        )

    @classmethod
    def save(
        cls,
        source: Any,
        directory: str,
        *,
        name: str = "",
        with_bitmaps: bool = True,
    ) -> "ColumnarStore":
        """Persist a database or columnar view into ``directory`` and open it.

        Args:
            source: An :class:`~repro.db.database.UncertainDatabase` (its
                name and vocabulary are carried into the manifest) or a bare
                :class:`~repro.db.columnar.ColumnarView`.
            directory: Target directory (created if missing; an existing
                store there is overwritten).
            name: Manifest name override.
            with_bitmaps: Also persist the packed occupancy bitmap plane
                (stage 1 of the cascade reads it directly off disk).
        """
        vocabulary: Optional[Sequence[str]] = None
        view = source
        if isinstance(source, UncertainDatabase):
            name = name or source.name
            vocabulary = list(source.vocabulary) if source.vocabulary is not None else None
            view = source.columnar()
        with cls.writer(
            directory,
            len(view),
            name=name,
            vocabulary=vocabulary,
            with_bitmaps=with_bitmaps,
        ) as writer:
            for item in view.items():
                rows, probs = view.column(item)
                writer.add_column(item, rows, probs)
        return cls.open(directory)

    @classmethod
    def open(cls, directory: str) -> "ColumnarStore":
        """Open an existing store, validating the manifest.

        With ``REPRO_STORE_VERIFY`` set truthy, a fresh open also
        checksum-verifies every plane file (:meth:`verify` with
        ``strict=True``) before the store is returned or cached — cached
        re-opens are not re-verified.

        Raises:
            StoreError: When the directory or manifest is missing (the
                fail-fast contract of worker re-attachment), the manifest
                is malformed / from an incompatible layout version, or
                verify-on-open finds a corrupt plane.
        """
        directory = os.fspath(directory)
        faults.maybe_corrupt_store(directory)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        try:
            stat = os.stat(manifest_path)
        except OSError:
            raise StoreError(
                f"no columnar store at {directory!r}: {MANIFEST_NAME} is missing "
                "(directory vanished or was never finalized)"
            ) from None
        key = (os.path.realpath(directory), stat.st_mtime_ns, stat.st_size)
        cached = _OPEN_STORES.get(key)
        if cached is not None:
            return cached
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != STORE_FORMAT:
            raise StoreError(f"{manifest_path}: not a {STORE_FORMAT} manifest")
        if manifest.get("version") != STORE_VERSION:
            raise StoreError(
                f"{manifest_path}: layout version {manifest.get('version')!r} "
                f"is not supported (expected {STORE_VERSION})"
            )
        native = _native_dtype_strings()
        if manifest.get("dtypes") != native:
            raise StoreError(
                f"{manifest_path}: plane dtypes {manifest.get('dtypes')} do not "
                f"match this platform's native layout {native}"
            )
        if len(manifest["offsets"]) != len(manifest["items"]) + 1:
            raise StoreError(f"{manifest_path}: offsets/items length mismatch")
        store = cls(directory, manifest)
        if os.environ.get(STORE_VERIFY_ENV, "").strip().lower() in (
            "1", "on", "true", "yes",
        ):
            store.verify(strict=True)
        _OPEN_STORES[key] = store
        return store

    # -- manifest properties -----------------------------------------------------
    @property
    def name(self) -> str:
        return self._manifest.get("name") or ""

    @property
    def n_transactions(self) -> int:
        return int(self._manifest["n_transactions"])

    @property
    def n_items(self) -> int:
        return len(self.items)

    @property
    def nnz(self) -> int:
        return int(self._manifest["nnz"])

    @property
    def vocabulary_labels(self) -> Optional[List[str]]:
        return self._manifest.get("vocabulary")

    @property
    def manifest_nbytes(self) -> int:
        """On-disk size of the manifest — the fan-out descriptor scale."""
        return os.path.getsize(os.path.join(self.directory, MANIFEST_NAME))

    def stamp(self) -> Tuple[str, int, int]:
        """Identity of the on-disk state: ``(realpath, mtime_ns, size)``.

        The same key the per-process open-store cache uses.  Two stamps
        compare equal exactly when they refer to the same finalized store
        contents (finalization writes the manifest atomically, so any
        rebuild changes its mtime/size).  The service layer records the
        stamp at dataset-registration time as the revision boundary of its
        result cache: a store rebuilt in place yields a new stamp, and
        results cached under the old one are never served again.
        """
        stat = os.stat(os.path.join(self.directory, MANIFEST_NAME))
        return (os.path.realpath(self.directory), stat.st_mtime_ns, stat.st_size)

    @property
    def data_nbytes(self) -> int:
        """Total on-disk size of the mapped planes."""
        total = 0
        for filename in self._manifest["planes"].values():
            if filename:
                total += os.path.getsize(os.path.join(self.directory, filename))
        return total

    # -- integrity ---------------------------------------------------------------
    def verify(self, strict: bool = False) -> Dict[str, Any]:
        """Checksum every plane file against the manifest.

        Reads each plane back from disk in chunks (deliberately not through
        the memmaps: corruption must be detectable regardless of what this
        process has already mapped or cached) and compares its CRC-32
        against the value recorded at build time.  Stores built before
        checksums existed verify as ok with the plane marked ``skipped``.

        Args:
            strict: Raise :class:`StoreError` naming the corrupt planes
                instead of returning a failing report.

        Returns:
            ``{"directory", "ok", "planes": {plane: {...}}}`` where each
            plane entry carries ``ok``, ``nbytes``, and either
            ``expected``/``actual`` CRC hex digests or a ``skipped`` /
            ``error`` explanation.
        """
        checksums = self._manifest.get("checksums") or {}
        planes: Dict[str, Dict[str, Any]] = {}
        ok = True
        for key, filename in self._manifest["planes"].items():
            if not filename:
                continue
            entry: Dict[str, Any] = {"file": filename}
            path = os.path.join(self.directory, filename)
            try:
                nbytes, crc = _file_crc32(path)
            except OSError as error:
                entry["ok"] = False
                entry["error"] = f"unreadable: {error}"
                ok = False
                planes[key] = entry
                continue
            entry["nbytes"] = nbytes
            expected = checksums.get(key)
            if expected is None:
                entry["ok"] = True
                entry["skipped"] = "manifest predates plane checksums"
            else:
                entry["expected"] = expected
                entry["actual"] = format(crc, "08x")
                entry["ok"] = entry["actual"] == expected
                ok = ok and entry["ok"]
            planes[key] = entry
        report = {"directory": self.directory, "ok": ok, "planes": planes}
        if strict and not ok:
            bad = ", ".join(
                sorted(key for key, entry in planes.items() if not entry["ok"])
            )
            raise StoreError(
                f"store {self.directory!r} failed checksum verification "
                f"(corrupt plane(s): {bad})"
            )
        return report

    def item_statistics_at(self, position: int) -> Tuple[float, float]:
        """(expected support, variance) of the item at manifest ``position``."""
        esup, variance = self._manifest["item_statistics"][position]
        return (float(esup), float(variance))

    def total_probability(self) -> float:
        return float(sum(stat[0] for stat in self._manifest["item_statistics"]))

    def item_index(self) -> Dict[int, int]:
        """``{item: manifest position}``, built lazily."""
        if self._item_index is None:
            self._item_index = {
                int(item): position for position, item in enumerate(self.items)
            }
        return self._item_index

    # -- planes ------------------------------------------------------------------
    def _open_plane(self, key: str, count: int) -> np.ndarray:
        dtype = np.dtype(_PLANE_DTYPES[key])
        if count == 0:
            empty = np.empty(0, dtype=dtype)
            empty.flags.writeable = False
            return empty
        path = os.path.join(self.directory, self._manifest["planes"][key])
        try:
            actual = os.path.getsize(path)
        except OSError:
            raise StoreError(f"store plane missing: {path}") from None
        if actual != count * dtype.itemsize:
            raise StoreError(
                f"store plane {path} is {actual} bytes, "
                f"manifest expects {count * dtype.itemsize}"
            )
        return np.memmap(path, dtype=dtype, mode="r", shape=(count,))

    def planes(self) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """The lazily opened ``(rows, probs, bitmaps)`` memmap planes."""
        if self._planes is None:
            rows = self._open_plane("rows", self.nnz)
            probs = self._open_plane("probs", self.nnz)
            bitmaps: Optional[np.ndarray] = None
            if self._manifest["planes"].get("bitmaps"):
                width = int(self._manifest["bitmap_width"])
                flat = self._open_plane("bitmaps", self.n_items * width)
                bitmaps = flat.reshape(self.n_items, width) if width else None
            self._planes = (rows, probs, bitmaps)
        return self._planes

    # -- views -------------------------------------------------------------------
    def view(self, start: int = 0, stop: Optional[int] = None) -> "MappedColumnarView":
        """A lazily mapped columnar view of rows ``[start, stop)``."""
        return MappedColumnarView(self, start, stop)

    def database(self) -> "StoreDatabase":
        """A database adapter mining straight off the mapped planes."""
        return StoreDatabase(self)


class _MappedColumns(Mapping):
    """Lazy ``{item: (rows, probs)}`` over the CSR planes of an open store.

    Items whose column is empty within the view's row range are absent —
    exactly the observable behaviour of
    :meth:`~repro.db.columnar.ColumnarView.slice_rows`, which drops empty
    columns from its materialised dict.
    """

    __slots__ = ("_view",)

    def __init__(self, view: "MappedColumnarView") -> None:
        self._view = view

    def __getitem__(self, item: int) -> ItemColumn:
        column = self._view._mapped_column(item)
        if column is None:
            raise KeyError(item)
        return column

    def __iter__(self) -> Iterator[int]:
        view = self._view
        for position, item in enumerate(view._store.items):
            lo, hi = view._resolve_bounds(position)
            if hi > lo:
                yield int(item)

    def __len__(self) -> int:
        return sum(1 for _ in iter(self))


class MappedColumnarView(ColumnarView):
    """A :class:`ColumnarView` whose columns lazily map an on-disk store.

    The view holds a row range ``[start, stop)`` of its store; a column
    access performs at most two binary searches into the mapped rows plane
    and returns memmap slices (full-range views) or re-based copies of just
    that column's in-range run (sharded views).  Everything else — the
    bitset cascade, prefix caching, batched level evaluation — is the
    unchanged base-class code operating on the lazy mapping, which is what
    keeps mapped results bitwise identical to in-RAM results.

    Pickling ships ``(directory, start, stop)`` only; unpickling re-opens
    the manifest (and raises a clear :class:`StoreError` if the store has
    vanished), which is what makes sharded fan-out of mapped views an
    O(manifest-bytes) dispatch.
    """

    def __init__(self, store: ColumnarStore, start: int = 0, stop: Optional[int] = None) -> None:
        self._bind(store, start, stop)

    def _bind(self, store: ColumnarStore, start: int, stop: Optional[int]) -> None:
        total = store.n_transactions
        stop = total if stop is None else int(stop)
        start = int(start)
        if not 0 <= start <= stop <= total:
            raise ValueError(f"invalid row range [{start}, {stop}) for {total} rows")
        self._store = store
        self._start = start
        self._stop = stop
        self._full = start == 0 and stop == total
        self._n_transactions = stop - start
        rows_plane, probs_plane, bitmap_plane = store.planes()
        self._rows_plane = rows_plane
        self._probs_plane = probs_plane
        self._bitmap_plane = bitmap_plane
        self._bounds_cache: Dict[int, Tuple[int, int]] = {}
        self._init_caches()
        self._column_cache = ByteBudgetLRU(resolve_knob("mapped_cache_bytes"))
        self._columns = _MappedColumns(self)

    # -- pickling ------------------------------------------------------------------
    @property
    def store_source(self) -> Tuple[str, int, int]:
        """``(directory, start, stop)`` — the view's O(1)-size fan-out descriptor."""
        return (self._store.directory, self._start, self._stop)

    def __getstate__(self):
        directory, start, stop = self.store_source
        return {"directory": directory, "start": start, "stop": stop}

    def __setstate__(self, state) -> None:
        store = ColumnarStore.open(state["directory"])
        self._bind(store, state["start"], state["stop"])

    # -- lazy column resolution ------------------------------------------------------
    def _resolve_bounds(self, position: int) -> Tuple[int, int]:
        """Absolute ``[lo, hi)`` run of manifest item ``position`` within the range."""
        offsets = self._store.offsets
        lo, hi = int(offsets[position]), int(offsets[position + 1])
        if self._full:
            return lo, hi
        bounds = self._bounds_cache.get(position)
        if bounds is None:
            run = self._rows_plane[lo:hi]
            bounds = (
                lo + int(np.searchsorted(run, self._start, side="left")),
                lo + int(np.searchsorted(run, self._stop, side="left")),
            )
            self._bounds_cache[position] = bounds
        return bounds

    def _mapped_column(self, item: int) -> Optional[ItemColumn]:
        position = self._store.item_index().get(item)
        if position is None:
            return None
        column = self._column_cache.get(item)
        if column is not None:
            return column
        lo, hi = self._resolve_bounds(position)
        if lo == hi:
            return None
        rows: np.ndarray = self._rows_plane[lo:hi]
        probs: np.ndarray = self._probs_plane[lo:hi]
        if self._start:
            # Re-base to shard-local row indices.  np.asarray first: a ufunc
            # on a memmap returns a heap-resident np.memmap *subclass*,
            # which would defeat the cache's mapped-charge detection.
            rows = np.asarray(rows) - np.int64(self._start)
            rows.flags.writeable = False
        column = (rows, probs)
        self._column_cache.put(item, column)
        return column

    # -- shape overrides ---------------------------------------------------------
    def nnz(self) -> int:
        if self._full:
            return self._store.nnz
        return sum(
            hi - lo
            for lo, hi in (
                self._resolve_bounds(position) for position in range(self._store.n_items)
            )
        )

    def item_statistics(self) -> Dict[int, Tuple[float, float]]:
        """Per-item moments — read from the manifest on full-range views.

        The manifest records ``float(probs.sum())`` / the Bernoulli variance
        sum computed at save time from the very arrays now mapped, and JSON
        round-trips IEEE doubles exactly, so the values are bitwise equal to
        recomputing.  Ranged (shard) views fall back to the base-class
        reduction over their lazily resolved columns.
        """
        if not self._full:
            return super().item_statistics()
        offsets = self._store.offsets
        return {
            int(item): self._store.item_statistics_at(position)
            for position, item in enumerate(self._store.items)
            if offsets[position + 1] > offsets[position]
        }

    # -- cascade overrides ---------------------------------------------------------
    def item_bitmap(self, item: int) -> np.ndarray:
        """Packed occupancy — one memmap row of the bitmap plane when possible.

        The stored plane packs occupancy over the *full* row range, and
        packed bitmaps cannot be sliced at non-byte-aligned shard bounds, so
        ranged views (and stores saved without bitmaps) build theirs from
        the column exactly like the in-RAM view — byte-identical either way
        (the plane itself is ``np.packbits`` of the same column).
        """
        if self._bitmap_plane is None or not self._full:
            return super().item_bitmap(item)
        bitmap = self._bitmaps.get(item)
        if bitmap is None:
            position = self._store.item_index().get(item)
            if position is None:
                return super().item_bitmap(item)
            bitmap = self._bitmap_plane[position]
            self._bitmaps.put(item, bitmap)
        return bitmap

    def slice_rows(self, start: int, stop: int) -> "MappedColumnarView":
        """A lazily mapped shard of rows ``[start, stop)`` (no materialisation)."""
        if not 0 <= start <= stop <= self._n_transactions:
            raise ValueError(
                f"invalid row range [{start}, {stop}) for {self._n_transactions} rows"
            )
        return MappedColumnarView(self._store, self._start + start, self._start + stop)


class StoreDatabase(UncertainDatabase):
    """An :class:`UncertainDatabase` served by an on-disk columnar store.

    The columnar backend — which every miner uses by default — runs
    entirely off the mapped planes; shape statistics come from the
    manifest.  Only consumers of the *row* representation (the ``rows``
    oracle backend, world sampling's transaction trimming) trigger a lazy
    one-time materialisation of transaction objects, which loads the whole
    database into memory — out-of-core workloads should stay on the
    columnar backend.
    """

    def __init__(self, store: ColumnarStore) -> None:
        self.store = store
        labels = store.vocabulary_labels
        self.vocabulary = Vocabulary(labels) if labels is not None else None
        self.name = store.name
        self._columnar = store.view()
        self._partitions: Dict[int, Any] = {}
        self._materialized: Optional[List[UncertainTransaction]] = None

    # Lazy stand-in for the eager list the base constructor builds: every
    # inherited row-path method (iteration, restriction, splitting, the
    # rows-backend probability primitives) transparently materialises on
    # first touch through this property.
    @property
    def _transactions(self) -> List[UncertainTransaction]:
        if self._materialized is None:
            self._materialized = self._build_transactions()
        return self._materialized

    def _build_transactions(self) -> List[UncertainTransaction]:
        units: List[Dict[int, float]] = [
            {} for _ in range(self.store.n_transactions)
        ]
        view = self._columnar
        for item in view.items():
            rows, probs = view.column(item)
            for row, probability in zip(rows.tolist(), probs.tolist()):
                units[row][item] = probability
        return [
            UncertainTransaction(tid, row_units) for tid, row_units in enumerate(units)
        ]

    # -- manifest-served shape ----------------------------------------------------
    def __len__(self) -> int:
        return self.store.n_transactions

    def items(self) -> List[int]:
        return self._columnar.items()

    def stats(self) -> DatabaseStats:
        n = self.store.n_transactions
        items = self.items()
        n_items = len(items)
        total_units = self.store.nnz
        total_probability = self.store.total_probability()
        average_length = total_units / n if n else 0.0
        density = average_length / n_items if n_items else 0.0
        average_probability = total_probability / total_units if total_units else 0.0
        return DatabaseStats(n, n_items, average_length, density, average_probability)

    def columnar(self) -> MappedColumnarView:
        return self._columnar


# -- shared-memory shard fan-out ---------------------------------------------------


class ShardSegment:
    """Coordinator-side handle of one exported shared-memory shard.

    The coordinator (the parallel executor) owns the segment's lifetime:
    :meth:`destroy` closes and unlinks it, tolerantly and idempotently, on
    ``close()``/``terminate()`` — segments must never outlive their run.
    """

    def __init__(self, shm: Any, descriptor: Dict[str, Any]) -> None:
        self.shm = shm
        self.descriptor = descriptor

    @property
    def name(self) -> str:
        return self.descriptor["name"]

    @property
    def nbytes(self) -> int:
        return int(self.descriptor["size"])

    def destroy(self) -> None:
        if self.shm is None:
            return
        try:
            self.shm.close()
        except Exception:
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass
        self.shm = None


def export_shard_segment(view: ColumnarView, name_prefix: str = "repro") -> ShardSegment:
    """Pack an in-RAM shard view into one shared-memory segment.

    Layout: three int64 header words ``(n_transactions, n_items, nnz)``
    followed by the items, offsets, rows and probs planes, all naturally
    aligned.  The data is copied exactly once (into the segment); every
    attaching worker then reads the same physical pages.
    """
    from multiprocessing import shared_memory

    items = view.items()
    columns = [view.column(item) for item in items]
    n_transactions = len(view)
    n_items = len(items)
    nnz = sum(len(rows) for rows, _ in columns)
    items_off = _SHM_HEADER_BYTES
    offsets_off = items_off + 8 * n_items
    rows_off = offsets_off + 8 * (n_items + 1)
    probs_off = rows_off + 8 * nnz
    total = probs_off + 8 * nnz
    name = f"{name_prefix}_{os.getpid()}_{secrets.token_hex(4)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(total, 8))
    try:
        header = np.frombuffer(shm.buf, dtype=np.int64, count=3)
        header[:] = (n_transactions, n_items, nnz)
        items_plane = np.frombuffer(shm.buf, np.int64, n_items, items_off)
        items_plane[:] = items
        offsets_plane = np.frombuffer(shm.buf, np.int64, n_items + 1, offsets_off)
        rows_plane = np.frombuffer(shm.buf, np.int64, nnz, rows_off)
        probs_plane = np.frombuffer(shm.buf, np.float64, nnz, probs_off)
        cursor = 0
        offsets_plane[0] = 0
        for position, (rows, probs) in enumerate(columns):
            rows_plane[cursor : cursor + len(rows)] = rows
            probs_plane[cursor : cursor + len(rows)] = probs
            cursor += len(rows)
            offsets_plane[position + 1] = cursor
        # Drop the buffer exports so close() cannot raise BufferError later.
        del header, items_plane, offsets_plane, rows_plane, probs_plane
    except BaseException:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        raise
    descriptor = {
        "name": name,
        "n_transactions": n_transactions,
        "n_items": n_items,
        "nnz": nnz,
        "size": total,
    }
    return ShardSegment(shm, descriptor)


#: process-lifetime pins of attached segments.  The attaching process (a
#: pool worker, or the coordinator itself on the in-process fallback path)
#: holds its mapping until exit: letting the ``SharedMemory`` handle be
#: garbage-collected while NumPy column slices still export its buffer
#: would raise ``BufferError`` from its finalizer.  Unlinking remains the
#: coordinator's job — pinning a handle does not keep a segment alive in
#: ``/dev/shm`` past ``ShardSegment.destroy()``.
_ATTACHED_SEGMENTS: List[Any] = []


def attach_shard_segment(descriptor: Dict[str, Any]) -> ColumnarView:
    """Attach a worker-side, read-only view of an exported shard segment.

    Fails fast with a descriptive :class:`StoreError` when the segment has
    vanished (coordinator closed, crashed, or unlinked early) instead of
    letting workers fall over on undefined reads.  The returned view's
    column arrays are zero-copy slices of the shared buffer.

    Resource-tracker ownership: the *creating* process registered the
    segment, and pool children — fork and spawn alike — inherit that same
    tracker through the multiprocessing preparation data, so the implicit
    attach-side ``register`` (pre-3.13, bpo-38119) is an idempotent no-op
    there and must **not** be undone: unregistering would strip the
    creator's only crash-cleanup entry.  On 3.13+ the redundant
    registration is skipped outright with ``track=False``.
    """
    from multiprocessing import shared_memory

    name = descriptor["name"]
    try:
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track parameter
            shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        raise StoreError(
            f"shared-memory segment {name!r} has vanished — the coordinating "
            "executor was closed or its segments were unlinked before fan-out"
        ) from None
    if shm.size < descriptor["size"]:
        shm.close()
        raise StoreError(
            f"shared-memory segment {name!r} is {shm.size} bytes, "
            f"descriptor expects {descriptor['size']}"
        )
    n_items = int(descriptor["n_items"])
    nnz = int(descriptor["nnz"])
    n_transactions = int(descriptor["n_transactions"])
    items_off = _SHM_HEADER_BYTES
    offsets_off = items_off + 8 * n_items
    rows_off = offsets_off + 8 * (n_items + 1)
    probs_off = rows_off + 8 * nnz
    header = np.frombuffer(shm.buf, dtype=np.int64, count=3)
    if tuple(header) != (n_transactions, n_items, nnz):
        shm.close()
        raise StoreError(
            f"shared-memory segment {name!r} header {tuple(header)} does not "
            f"match its descriptor ({n_transactions}, {n_items}, {nnz})"
        )
    items_plane = np.frombuffer(shm.buf, np.int64, n_items, items_off)
    offsets_plane = np.frombuffer(shm.buf, np.int64, n_items + 1, offsets_off)
    rows_plane = np.frombuffer(shm.buf, np.int64, nnz, rows_off)
    probs_plane = np.frombuffer(shm.buf, np.float64, nnz, probs_off)
    rows_plane.flags.writeable = False
    probs_plane.flags.writeable = False
    columns: Dict[int, ItemColumn] = {}
    for position in range(n_items):
        lo, hi = int(offsets_plane[position]), int(offsets_plane[position + 1])
        if lo == hi:
            continue
        columns[int(items_plane[position])] = (rows_plane[lo:hi], probs_plane[lo:hi])
    view = ColumnarView.from_columns(columns, n_transactions)
    # The column slices reference the shared buffer, so the mapping must
    # outlive every view carved from it: pin the handle for process
    # lifetime (see _ATTACHED_SEGMENTS) and on the view itself.
    _ATTACHED_SEGMENTS.append(shm)
    view._shm = shm
    return view
