"""Possible-world semantics: sampling and exhaustive enumeration.

An uncertain database induces a distribution over *possible worlds* — the
deterministic databases obtained by independently deciding, for every unit,
whether the item is present.  The support of an itemset in the uncertain
database is exactly its (deterministic) support in a randomly drawn world.

These utilities are the ground truth used by the test-suite: Monte-Carlo
estimates and exhaustive enumeration of the world distribution validate the
analytic support distributions computed by :mod:`repro.core.support` and the
miners built on top of them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .database import UncertainDatabase

__all__ = [
    "sample_world",
    "sample_worlds",
    "enumerate_worlds",
    "monte_carlo_support",
    "world_count",
]


DeterministicWorld = List[Tuple[int, ...]]


def sample_world(
    database: UncertainDatabase, rng: np.random.Generator
) -> DeterministicWorld:
    """Draw one possible world: a list of deterministic transactions (item tuples)."""
    world: DeterministicWorld = []
    for transaction in database:
        present = tuple(
            item
            for item, probability in transaction.units.items()
            if rng.random() < probability
        )
        world.append(present)
    return world


def sample_worlds(
    database: UncertainDatabase, n_worlds: int, seed: int = 0
) -> Iterator[DeterministicWorld]:
    """Yield ``n_worlds`` independent possible worlds."""
    rng = np.random.default_rng(seed)
    for _ in range(n_worlds):
        yield sample_world(database, rng)


def world_count(database: UncertainDatabase) -> int:
    """Return the number of distinct possible worlds (2 ** number of uncertain units)."""
    uncertain_units = sum(
        1
        for transaction in database
        for probability in transaction.units.values()
        if 0.0 < probability < 1.0
    )
    return 2 ** uncertain_units


def enumerate_worlds(
    database: UncertainDatabase,
) -> Iterator[Tuple[float, DeterministicWorld]]:
    """Exhaustively enumerate ``(probability, world)`` pairs.

    Only feasible for tiny databases (the number of worlds is exponential in
    the number of uncertain units); the test-suite uses it on paper-sized
    examples such as Table 1.
    """
    transactions = list(database)

    def _expand(index: int, probability: float, world: DeterministicWorld):
        if index == len(transactions):
            yield probability, list(world)
            return
        transaction = transactions[index]
        units = list(transaction.units.items())

        def _expand_units(unit_index: int, unit_probability: float, present: List[int]):
            if unit_index == len(units):
                world.append(tuple(present))
                yield from _expand(index + 1, probability * unit_probability, world)
                world.pop()
                return
            item, item_probability = units[unit_index]
            if item_probability < 1.0:
                yield from _expand_units(
                    unit_index + 1, unit_probability * (1.0 - item_probability), present
                )
            if item_probability > 0.0:
                present.append(item)
                yield from _expand_units(
                    unit_index + 1, unit_probability * item_probability, present
                )
                present.pop()

        yield from _expand_units(0, 1.0, [])

    yield from _expand(0, 1.0, [])


def monte_carlo_support(
    database: UncertainDatabase,
    itemset: Sequence[int],
    n_worlds: int = 2000,
    seed: int = 0,
) -> Dict[int, float]:
    """Estimate the support distribution of ``itemset`` by sampling worlds.

    Returns a dictionary mapping support values to estimated probabilities.
    """
    itemset = tuple(itemset)
    counts: Dict[int, int] = {}
    for world in sample_worlds(database, n_worlds, seed):
        support = sum(1 for items in world if set(itemset) <= set(items))
        counts[support] = counts.get(support, 0) + 1
    return {support: count / n_worlds for support, count in counts.items()}
