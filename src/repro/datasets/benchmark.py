"""Synthetic analogues of the paper's benchmark datasets.

The paper evaluates on five deterministic FIMI datasets with probabilities
layered on top (Tables 6 and 7):

=============  ============  =========  =========  ========  =================
Dataset        #Transactions  #Items     Avg. len.  Density   Probability model
=============  ============  =========  =========  ========  =================
Connect        67,557         129        43         0.33      Gaussian(0.95, 0.05)
Accident       340,183        468        33.8       0.072     Gaussian(0.5, 0.5)
Kosarak        990,002        41,270     8.1        0.00019   Gaussian(0.5, 0.5)
Gazelle        59,601         498        2.5        0.005     Gaussian(0.95, 0.05)
T25I15D320k    320,000        994        25         0.025     Gaussian(0.9, 0.1)
=============  ============  =========  =========  ========  =================

The original files are not redistributable and full-scale runs are
impractical for a pure-Python re-run, so each benchmark is replaced by a
*seeded generator* reproducing its shape statistics.  A ``scale`` factor
shrinks the transaction count (and, for the sparse datasets, the item
vocabulary proportionally) while preserving density and average length —
the properties the paper's conclusions actually depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..db.database import UncertainDatabase
from .probability import GaussianProbabilityModel, ProbabilityModel, ZipfProbabilityModel
from .synthetic import DenseSparseGenerator, QuestGenerator

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "make_benchmark",
    "make_connect",
    "make_accident",
    "make_kosarak",
    "make_gazelle",
    "make_t25i15d",
    "make_zipf_dense",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Published shape of one paper benchmark plus its default probability model."""

    name: str
    n_transactions: int
    n_items: int
    avg_transaction_length: float
    density: float
    probability_mean: float
    probability_variance: float
    dense: bool
    scale_items: bool  # shrink the vocabulary together with the transaction count?


BENCHMARKS: Dict[str, BenchmarkSpec] = {
    "connect": BenchmarkSpec("connect", 67_557, 129, 43.0, 0.33, 0.95, 0.05, True, False),
    "accident": BenchmarkSpec("accident", 340_183, 468, 33.8, 0.072, 0.5, 0.5, True, False),
    "kosarak": BenchmarkSpec("kosarak", 990_002, 41_270, 8.1, 0.00019, 0.5, 0.5, False, True),
    "gazelle": BenchmarkSpec("gazelle", 59_601, 498, 2.5, 0.005, 0.95, 0.05, False, False),
    "t25i15d320k": BenchmarkSpec("t25i15d320k", 320_000, 994, 25.0, 0.025, 0.9, 0.1, True, False),
}


def _scaled_counts(spec: BenchmarkSpec, scale: float) -> (int, int):
    """Return (n_transactions, n_items) after applying the scale factor."""
    if scale <= 0 or scale > 1:
        raise ValueError("scale must lie in (0, 1]")
    n_transactions = max(50, int(spec.n_transactions * scale))
    if spec.scale_items:
        # Keep at least a thousand items so the dataset stays recognisably
        # sparse even at small scales (Kosarak's defining property).
        n_items = max(1000, int(spec.n_items * scale))
    else:
        n_items = spec.n_items
    n_items = max(n_items, int(spec.avg_transaction_length) + 1)
    return n_transactions, n_items


def make_benchmark(
    name: str,
    scale: float = 0.01,
    probability_model: Optional[ProbabilityModel] = None,
    n_transactions: Optional[int] = None,
    seed: int = 11,
) -> UncertainDatabase:
    """Build a scaled analogue of the named paper benchmark.

    Parameters
    ----------
    name:
        One of ``connect``, ``accident``, ``kosarak``, ``gazelle``,
        ``t25i15d320k`` (case-insensitive).
    scale:
        Fraction of the original transaction count to generate.  The default
        of 1% keeps pure-Python benchmark runs tractable; pass ``1.0`` to
        regenerate the full published size.
    probability_model:
        Override the default Gaussian model of Table 7 (e.g. with a
        :class:`~repro.datasets.probability.ZipfProbabilityModel`).
    n_transactions:
        Explicit transaction count overriding ``scale``.
    seed:
        Seed controlling both the item structure and, unless a model is
        supplied, the probability assignment.
    """
    key = name.lower()
    if key not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; expected one of {sorted(BENCHMARKS)}")
    spec = BENCHMARKS[key]
    scaled_transactions, scaled_items = _scaled_counts(spec, scale)
    if n_transactions is not None:
        scaled_transactions = n_transactions

    if probability_model is None:
        probability_model = GaussianProbabilityModel(
            mean=spec.probability_mean, variance=spec.probability_variance, seed=seed + 1
        )

    label = f"{spec.name}-{scaled_transactions}"
    if key == "t25i15d320k":
        generator = QuestGenerator(
            n_items=scaled_items,
            avg_transaction_length=spec.avg_transaction_length,
            avg_pattern_length=15.0,
            seed=seed,
        )
        return generator.generate(scaled_transactions, probability_model, name=label)

    # Dense datasets keep a flatter popularity with a head of items present in
    # most transactions (items co-occur massively); sparse datasets use a
    # steeper decay so most items are individually rare.
    if spec.dense:
        decay, max_inclusion = 0.6, 0.95
    else:
        decay, max_inclusion = 1.1, 0.9
    generator = DenseSparseGenerator(
        n_items=scaled_items,
        avg_transaction_length=spec.avg_transaction_length,
        popularity_decay=decay,
        max_inclusion=max_inclusion,
        seed=seed,
    )
    return generator.generate(scaled_transactions, probability_model, name=label)


def make_connect(scale: float = 0.01, seed: int = 11, **kwargs) -> UncertainDatabase:
    """Dense, high-mean/low-variance analogue of Connect."""
    return make_benchmark("connect", scale=scale, seed=seed, **kwargs)


def make_accident(scale: float = 0.01, seed: int = 11, **kwargs) -> UncertainDatabase:
    """Dense, low-mean/high-variance analogue of Accident."""
    return make_benchmark("accident", scale=scale, seed=seed, **kwargs)


def make_kosarak(scale: float = 0.01, seed: int = 11, **kwargs) -> UncertainDatabase:
    """Sparse, low-mean/high-variance analogue of Kosarak."""
    return make_benchmark("kosarak", scale=scale, seed=seed, **kwargs)


def make_gazelle(scale: float = 0.01, seed: int = 11, **kwargs) -> UncertainDatabase:
    """Sparse, high-mean/low-variance analogue of Gazelle."""
    return make_benchmark("gazelle", scale=scale, seed=seed, **kwargs)


def make_t25i15d(
    n_transactions: int = 3200, seed: int = 11, **kwargs
) -> UncertainDatabase:
    """Quest-style scalability dataset (the paper's T25I15D320k, scaled)."""
    return make_benchmark(
        "t25i15d320k", n_transactions=n_transactions, seed=seed, **kwargs
    )


def make_zipf_dense(
    skew: float = 1.2,
    n_transactions: int = 1000,
    scale: Optional[float] = None,
    seed: int = 11,
) -> UncertainDatabase:
    """Dense dataset whose probabilities follow a Zipf law of the given skew.

    Reproduces the Fig. 4(k-l)/5(k-l)/6(k-l) scenario: a dense item
    structure (Connect-like) with probabilities drawn from a Zipf
    distribution whose skew is swept from 0.8 to 2.0.
    """
    model = ZipfProbabilityModel(skew=skew, seed=seed + 1)
    if scale is not None:
        return make_benchmark("connect", scale=scale, probability_model=model, seed=seed)
    return make_benchmark(
        "connect", n_transactions=n_transactions, probability_model=model, seed=seed
    )
