"""A small registry mapping dataset names to factory callables.

The evaluation harness and the command line interface refer to datasets by
name; registering factories here keeps those layers free of construction
details and lets users plug in their own datasets.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..db.database import UncertainDatabase
from . import benchmark

__all__ = ["register_dataset", "dataset_names", "load_dataset"]

DatasetFactory = Callable[..., UncertainDatabase]

_REGISTRY: Dict[str, DatasetFactory] = {}


def register_dataset(name: str, factory: DatasetFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name`` (case-insensitive)."""
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"dataset {name!r} is already registered")
    _REGISTRY[key] = factory


def dataset_names() -> List[str]:
    """Return the sorted list of registered dataset names."""
    return sorted(_REGISTRY)


def load_dataset(name: str, **kwargs) -> UncertainDatabase:
    """Instantiate the dataset registered under ``name``.

    Keyword arguments are forwarded to the factory (e.g. ``scale=0.05`` or
    ``n_transactions=2000``).
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; known: {dataset_names()}")
    return _REGISTRY[key](**kwargs)


# Default registrations: the five paper benchmarks plus the Zipf variant.
register_dataset("connect", benchmark.make_connect)
register_dataset("accident", benchmark.make_accident)
register_dataset("kosarak", benchmark.make_kosarak)
register_dataset("gazelle", benchmark.make_gazelle)
register_dataset("t25i15d", benchmark.make_t25i15d)
register_dataset("zipf-dense", benchmark.make_zipf_dense)
