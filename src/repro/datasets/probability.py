"""Probability models used to turn deterministic benchmarks into uncertain ones.

The paper takes classic deterministic FIMI datasets and assigns each item
occurrence an existence probability drawn from a Gaussian distribution
(truncated to ``[0, 1]``) or, for the uncertainty-sensitivity study, a Zipf
distribution over a small grid of probability levels.  These models
reproduce that methodology.  All models are deterministic given a seed so
experiments are repeatable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

__all__ = [
    "ProbabilityModel",
    "GaussianProbabilityModel",
    "ZipfProbabilityModel",
    "ConstantProbabilityModel",
    "UniformProbabilityModel",
]


class ProbabilityModel(ABC):
    """Assigns an existence probability to every ``(tid, item)`` occurrence."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._seed = seed

    @property
    def seed(self) -> int:
        return self._seed

    @abstractmethod
    def sample(self) -> float:
        """Draw one probability value."""

    def __call__(self, tid: int, item: int) -> float:
        """Probability of ``item`` existing in transaction ``tid``.

        The default implementation ignores the coordinates and simply draws
        from the model's distribution, which matches the paper's methodology
        (probabilities are i.i.d. across occurrences).
        """
        return self.sample()


class ConstantProbabilityModel(ProbabilityModel):
    """Every occurrence gets the same probability (handy for tests)."""

    def __init__(self, probability: float = 1.0) -> None:
        super().__init__(seed=0)
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        self.probability = probability

    def sample(self) -> float:
        return self.probability


class UniformProbabilityModel(ProbabilityModel):
    """Probabilities drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.0, high: float = 1.0, seed: int = 0) -> None:
        super().__init__(seed)
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError("require 0 <= low <= high <= 1")
        self.low = low
        self.high = high

    def sample(self) -> float:
        return float(self._rng.uniform(self.low, self.high))


class GaussianProbabilityModel(ProbabilityModel):
    """Truncated Gaussian probabilities, the paper's default model.

    The paper parameterises its scenarios by ``(mean, variance)`` — e.g. the
    dense Connect dataset uses mean 0.95 / variance 0.05 and Accident uses
    mean 0.5 / variance 0.5 (Table 7).  Draws are clipped into ``(0, 1]``;
    values that clip to zero are raised to ``minimum`` so every unit retains
    a (possibly tiny) chance of existing, mirroring the reference
    implementations which never emit zero-probability units.
    """

    def __init__(
        self,
        mean: float = 0.5,
        variance: float = 0.1,
        seed: int = 0,
        minimum: float = 1e-3,
    ) -> None:
        super().__init__(seed)
        if variance < 0:
            raise ValueError("variance must be non-negative")
        self.mean = mean
        self.variance = variance
        self.minimum = minimum
        self._std = float(np.sqrt(variance))

    def sample(self) -> float:
        value = float(self._rng.normal(self.mean, self._std))
        return float(min(1.0, max(self.minimum, value)))


class ZipfProbabilityModel(ProbabilityModel):
    """Zipf-distributed probabilities over a grid of levels.

    The paper studies the effect of skew by drawing probabilities from a Zipf
    law: a rank ``k`` is drawn with probability proportional to ``k**-skew``
    and mapped onto an *ascending* grid of probability levels whose first
    (most likely) level is zero.  Increasing the skew therefore pushes more
    and more occurrences to zero probability — the behaviour the paper
    reports: with higher skew, items effectively disappear, fewer itemsets
    are frequent and both running time and memory drop.
    """

    def __init__(
        self,
        skew: float = 1.2,
        levels: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if skew <= 0:
            raise ValueError("skew must be positive")
        self.skew = skew
        if levels is None:
            # Ascending grid: rank 1 -> zero probability, deep ranks -> high.
            levels = np.array([0.0, 0.01, 0.05, 0.1, 0.3, 0.5, 0.7, 0.9])
        self.levels = np.asarray(levels, dtype=float)
        ranks = np.arange(1, len(self.levels) + 1, dtype=float)
        weights = ranks ** (-self.skew)
        self._rank_probabilities = weights / weights.sum()

    def sample(self) -> float:
        rank = int(self._rng.choice(len(self.levels), p=self._rank_probabilities))
        return float(self.levels[rank])
