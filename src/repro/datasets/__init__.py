"""Dataset generation: probability models and benchmark analogues."""

from .benchmark import (
    BENCHMARKS,
    BenchmarkSpec,
    make_accident,
    make_benchmark,
    make_connect,
    make_gazelle,
    make_kosarak,
    make_t25i15d,
    make_zipf_dense,
)
from .probability import (
    ConstantProbabilityModel,
    GaussianProbabilityModel,
    ProbabilityModel,
    UniformProbabilityModel,
    ZipfProbabilityModel,
)
from .registry import dataset_names, load_dataset, register_dataset
from .synthetic import DenseSparseGenerator, QuestGenerator, attach_probabilities

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "ConstantProbabilityModel",
    "DenseSparseGenerator",
    "GaussianProbabilityModel",
    "ProbabilityModel",
    "QuestGenerator",
    "UniformProbabilityModel",
    "ZipfProbabilityModel",
    "attach_probabilities",
    "dataset_names",
    "load_dataset",
    "make_accident",
    "make_benchmark",
    "make_connect",
    "make_gazelle",
    "make_kosarak",
    "make_t25i15d",
    "make_zipf_dense",
    "register_dataset",
]
