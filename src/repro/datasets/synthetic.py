"""Synthetic transaction generators.

Two generators cover the structures the paper needs:

* :class:`QuestGenerator` — an IBM Quest-style generator producing the
  ``T<avg len>I<pattern len>D<n transactions>`` family (the paper's
  scalability dataset is T25I15D320k).  Transactions are assembled from a
  pool of correlated "potentially frequent" patterns so realistic frequent
  itemsets exist at several sizes.
* :class:`DenseSparseGenerator` — a direct way to dial in the shape
  statistics of Table 6 (number of items, average transaction length,
  density) without the pattern machinery; used for the Connect / Accident /
  Kosarak / Gazelle analogues in :mod:`repro.datasets.benchmark`.

Both generators output *deterministic* item structures; uncertainty is
layered on top by a :class:`~repro.datasets.probability.ProbabilityModel`,
mirroring the paper's "assign a probability to each item of a deterministic
benchmark" methodology.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..db.database import UncertainDatabase
from ..db.transaction import UncertainTransaction
from .probability import ConstantProbabilityModel, ProbabilityModel

__all__ = ["QuestGenerator", "DenseSparseGenerator", "attach_probabilities"]


def attach_probabilities(
    item_lists: Sequence[Sequence[int]],
    probability_model: Optional[ProbabilityModel] = None,
    name: str = "",
) -> UncertainDatabase:
    """Convert deterministic transactions into an uncertain database.

    Each item occurrence is assigned a probability drawn from
    ``probability_model`` (default: certain items, probability 1.0).
    """
    model = probability_model or ConstantProbabilityModel(1.0)
    transactions: List[UncertainTransaction] = []
    for tid, items in enumerate(item_lists):
        units: Dict[int, float] = {}
        for item in items:
            units[int(item)] = model(tid, int(item))
        transactions.append(UncertainTransaction(tid, units))
    return UncertainDatabase(transactions, name=name)


class QuestGenerator:
    """IBM Quest-style synthetic market-basket generator.

    Parameters
    ----------
    n_items:
        Size of the item vocabulary.
    avg_transaction_length:
        Average number of items per transaction (``T`` in the dataset name).
    avg_pattern_length:
        Average size of the potentially-frequent patterns (``I``).
    n_patterns:
        Number of patterns in the pool.
    correlation:
        Probability that consecutive patterns within a transaction are drawn
        dependently (share a common prefix), as in the original generator.
    seed:
        Seed for reproducibility.
    """

    def __init__(
        self,
        n_items: int = 994,
        avg_transaction_length: float = 25.0,
        avg_pattern_length: float = 15.0,
        n_patterns: int = 200,
        correlation: float = 0.5,
        seed: int = 7,
    ) -> None:
        if n_items <= 0:
            raise ValueError("n_items must be positive")
        if avg_transaction_length <= 0 or avg_pattern_length <= 0:
            raise ValueError("average lengths must be positive")
        self.n_items = n_items
        self.avg_transaction_length = avg_transaction_length
        self.avg_pattern_length = avg_pattern_length
        self.n_patterns = n_patterns
        self.correlation = correlation
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._patterns = self._build_patterns()
        pattern_weights = self._rng.exponential(scale=1.0, size=len(self._patterns))
        self._pattern_probabilities = pattern_weights / pattern_weights.sum()

    def _build_patterns(self) -> List[List[int]]:
        """Create the pool of potentially frequent patterns.

        Items are drawn with an exponentially decaying popularity so a small
        core of items appears in many patterns — the property that makes
        Quest data exhibit non-trivial frequent itemsets.
        """
        popularity = self._rng.exponential(scale=1.0, size=self.n_items)
        popularity /= popularity.sum()
        patterns: List[List[int]] = []
        previous: List[int] = []
        for _ in range(self.n_patterns):
            length = max(1, int(self._rng.poisson(self.avg_pattern_length)))
            length = min(length, self.n_items)
            pattern: List[int] = []
            if previous and self._rng.random() < self.correlation:
                carry = max(1, int(len(previous) * self._rng.random()))
                pattern.extend(previous[:carry])
            while len(pattern) < length:
                item = int(self._rng.choice(self.n_items, p=popularity))
                if item not in pattern:
                    pattern.append(item)
            patterns.append(pattern)
            previous = pattern
        return patterns

    def generate_item_lists(self, n_transactions: int) -> List[List[int]]:
        """Generate deterministic transactions as lists of item identifiers."""
        if n_transactions < 0:
            raise ValueError("n_transactions must be non-negative")
        transactions: List[List[int]] = []
        for _ in range(n_transactions):
            target_length = max(1, int(self._rng.poisson(self.avg_transaction_length)))
            target_length = min(target_length, self.n_items)
            chosen: List[int] = []
            chosen_set = set()
            while len(chosen) < target_length:
                pattern_index = int(
                    self._rng.choice(len(self._patterns), p=self._pattern_probabilities)
                )
                for item in self._patterns[pattern_index]:
                    if item not in chosen_set:
                        chosen.append(item)
                        chosen_set.add(item)
                    if len(chosen) >= target_length:
                        break
            transactions.append(chosen)
        return transactions

    def generate(
        self,
        n_transactions: int,
        probability_model: Optional[ProbabilityModel] = None,
        name: Optional[str] = None,
    ) -> UncertainDatabase:
        """Generate an uncertain database of ``n_transactions`` transactions."""
        item_lists = self.generate_item_lists(n_transactions)
        if name is None:
            name = (
                f"T{int(self.avg_transaction_length)}"
                f"I{int(self.avg_pattern_length)}"
                f"D{n_transactions}"
            )
        return attach_probabilities(item_lists, probability_model, name=name)


class DenseSparseGenerator:
    """Generate transactions with a prescribed density profile.

    Each item ``i`` (ranked by popularity) is included in a transaction
    independently with probability ``q_i = min(max_inclusion, c * i**-decay)``
    where ``c`` is calibrated so that ``sum(q_i)`` equals the requested
    average transaction length.  Dense benchmarks (Connect, Accident) are
    characterised by a head of items that appear in almost every transaction
    — obtained with a small ``decay`` and a high ``max_inclusion`` — while
    sparse benchmarks (Kosarak, Gazelle) use a steeper decay so the tail of
    items is long and individually rare.  This inclusion model keeps the
    *density* (average length / item count) and the popularity skew — the
    two properties the paper's dense-vs-sparse findings depend on — under
    direct control.
    """

    def __init__(
        self,
        n_items: int,
        avg_transaction_length: float,
        popularity_decay: float = 1.0,
        max_inclusion: float = 0.9,
        seed: int = 11,
    ) -> None:
        if n_items <= 0:
            raise ValueError("n_items must be positive")
        if avg_transaction_length <= 0:
            raise ValueError("avg_transaction_length must be positive")
        if avg_transaction_length > n_items:
            raise ValueError("average transaction length cannot exceed the item count")
        if not 0.0 < max_inclusion <= 1.0:
            raise ValueError("max_inclusion must lie in (0, 1]")
        self.n_items = n_items
        self.avg_transaction_length = avg_transaction_length
        self.popularity_decay = popularity_decay
        self.max_inclusion = max_inclusion
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._inclusion = self._calibrate_inclusion()

    def _calibrate_inclusion(self) -> np.ndarray:
        """Solve for per-item inclusion probabilities summing to the average length."""
        ranks = np.arange(1, self.n_items + 1, dtype=float)
        base = ranks ** (-self.popularity_decay)
        # Binary search on the scale factor; the capped sum is monotone in it.
        low, high = 0.0, 2.0
        target = float(self.avg_transaction_length)
        while np.minimum(self.max_inclusion, high * base).sum() < target:
            high *= 2.0
            if high > 1e9:
                break
        for _ in range(60):
            middle = 0.5 * (low + high)
            if np.minimum(self.max_inclusion, middle * base).sum() < target:
                low = middle
            else:
                high = middle
        return np.minimum(self.max_inclusion, high * base)

    @property
    def inclusion_probabilities(self) -> np.ndarray:
        """Per-item (rank-ordered) probabilities of appearing in a transaction."""
        return self._inclusion.copy()

    def generate_item_lists(self, n_transactions: int) -> List[List[int]]:
        """Generate deterministic transactions honouring the density profile."""
        transactions: List[List[int]] = []
        for _ in range(n_transactions):
            draws = self._rng.random(self.n_items)
            items = np.nonzero(draws < self._inclusion)[0]
            if len(items) == 0:
                # Guarantee non-empty transactions: fall back to the most popular item.
                items = np.array([0])
            transactions.append([int(item) for item in items])
        return transactions

    def generate(
        self,
        n_transactions: int,
        probability_model: Optional[ProbabilityModel] = None,
        name: str = "",
    ) -> UncertainDatabase:
        """Generate an uncertain database of ``n_transactions`` transactions."""
        item_lists = self.generate_item_lists(n_transactions)
        return attach_probabilities(item_lists, probability_model, name=name)
