"""Unified execution planning: one plan object, four resolution tiers.

:mod:`repro.plan.spec`
    The :class:`ExecutionPlan` dataclass, the knob registry, and the
    ``explicit > scope > environment > planner default`` pipeline that
    replaced the scattered per-knob ``resolve_*``/``*_scope`` machinery.

:mod:`repro.plan.planner`
    The ``--plan auto`` cost model: dataset features, the analytic
    :class:`Planner` fit from the benchmark trajectory, and
    :func:`materialize_plan` — the run-level entry point.
"""

from .planner import (
    DatasetFeatures,
    PlanDecision,
    Planner,
    materialize_plan,
    plan_request_is_auto,
)
from .spec import (
    BACKENDS,
    KNOBS,
    PLAN_ENV,
    ExecutionPlan,
    Knob,
    active_plan,
    ensure_plan,
    parse_plan_spec,
    plan_scope,
    reset_deprecation_warnings,
    resolve_knob,
)

__all__ = [
    "BACKENDS",
    "KNOBS",
    "PLAN_ENV",
    "DatasetFeatures",
    "ExecutionPlan",
    "Knob",
    "PlanDecision",
    "Planner",
    "active_plan",
    "ensure_plan",
    "materialize_plan",
    "parse_plan_spec",
    "plan_request_is_auto",
    "plan_scope",
    "reset_deprecation_warnings",
    "resolve_knob",
]
