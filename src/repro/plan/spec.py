"""The unified :class:`ExecutionPlan` and its four-tier knob resolution.

Before this module every tuning knob of the stack had its own ad-hoc
``resolve_*`` function and environment variable, scattered across
``db/database.py`` (backend), ``db/columnar.py`` (bitset cascade, cache
budgets, dense crossover), ``core/parallel.py`` (workers, shards, fanout)
and ``core/support.py`` (DP block bytes, convolution strategy) — and the
``bitset_scope``/``fanout_scope`` context managers pinned their defaults by
*mutating the process environment*, which races under the threaded mining
service.

This module replaces all of that with one registry of knobs and one
resolution pipeline.  Every knob resolves through exactly four tiers::

    explicit argument  >  scoped plan  >  environment  >  planner default

* **explicit argument** — the value handed to a function or constructor
  (``TopKMiner(workers=4)``, ``resolve_bitset("off")``).
* **scoped plan** — the innermost :func:`plan_scope` context manager.
  Scopes are backed by :mod:`contextvars`, so concurrent threads (the
  mining service's request executors) never observe each other's plans.
* **environment** — the knob's own environment variable
  (``REPRO_WORKERS=4``), falling back to the knob's entry in the composite
  ``REPRO_PLAN`` spec (``REPRO_PLAN=workers=4,bitset=off``).  The
  pre-plan per-knob variables keep working as deprecated aliases; reading
  one emits a single :class:`DeprecationWarning` per variable per process.
* **planner default** — the static default from the registry below, or the
  value chosen by the cost-model planner (:mod:`repro.plan.planner`) when
  the run was materialized with ``plan="auto"``.

The pipeline is *pure resolution*: no tier ever writes to ``os.environ``.

>>> plan = ExecutionPlan(workers=4, bitset=False)
>>> with plan_scope(plan):
...     resolve_knob("workers"), resolve_knob("bitset")
(4, False)
>>> resolve_knob("workers", 2)  # explicit beats everything
2
"""

from __future__ import annotations

import os
import threading
import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple, Union

__all__ = [
    "BACKENDS",
    "PLAN_ENV",
    "ExecutionPlan",
    "Knob",
    "KNOBS",
    "active_plan",
    "ensure_plan",
    "parse_plan_spec",
    "plan_scope",
    "reset_deprecation_warnings",
    "resolve_knob",
]

#: composite plan environment variable: ``auto`` or a ``k=v,k=v`` spec
PLAN_ENV = "REPRO_PLAN"

#: the probability-evaluation backends (canonical definition; re-exported
#: by :mod:`repro.db.database` for backwards compatibility)
BACKENDS = ("rows", "columnar")

_BITSET_TRUE = ("", "1", "on", "true", "yes")
_BITSET_FALSE = ("0", "off", "false", "no")
_FANOUT_MODES = ("auto", "shm", "pickle")

_BYTE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def _available_cpus() -> int:
    """Number of CPUs the process may actually use (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


# -- per-knob parsers ------------------------------------------------------------------
# Each parser normalizes an explicit value (bool/int/float/str, including the
# raw strings arriving from environment variables and ``k=v`` plan specs) into
# the knob's canonical representation, raising ``ValueError`` with the same
# message the historical resolve_* function used.


def _parse_backend(value: Any) -> str:
    value = str(value).strip().lower() if not isinstance(value, str) else value
    if value not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {value!r}")
    return value


def _parse_bitset(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    lowered = str(value).strip().lower()
    if lowered in _BITSET_TRUE:
        return True
    if lowered in _BITSET_FALSE:
        return False
    raise ValueError(
        f"bitset must be one of on/off/true/false/1/0/yes/no, got {value!r}"
    )


def _parse_fanout(value: Any) -> str:
    lowered = str(value).strip().lower()
    if not lowered:
        return "auto"
    if lowered in _FANOUT_MODES:
        return lowered
    raise ValueError(
        f"fanout must be one of {'/'.join(_FANOUT_MODES)}, got {value!r}"
    )


def _parse_workers(value: Any) -> int:
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered == "auto":
            return _available_cpus()
        value = int(lowered)
    workers = int(value)
    if workers == 0:
        return _available_cpus()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _parse_shards(value: Any) -> int:
    shards = int(value)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return shards


def _parse_dense_crossover(value: Any) -> float:
    crossover = float(value)
    if not 0.0 <= crossover <= 1.0:
        raise ValueError(f"dense_crossover must be in [0, 1], got {crossover}")
    return crossover


def _parse_conv_span(value: Any) -> int:
    span = int(value)
    if span < 0:
        raise ValueError(f"conv_span must be >= 0 (0 = never use the FFT), got {span}")
    return span


def _parse_bytes(value: Any, *, minimum: int, label: str) -> int:
    if isinstance(value, str):
        lowered = value.strip().lower()
        scale = 1
        if lowered and lowered[-1] in _BYTE_SUFFIXES:
            scale = _BYTE_SUFFIXES[lowered[-1]]
            lowered = lowered[:-1]
        value = int(lowered) * scale
    amount = int(value)
    if amount < minimum:
        raise ValueError(f"{label} must be >= {minimum}, got {amount}")
    return amount


def _byte_parser(minimum: int, label: str) -> Callable[[Any], int]:
    return lambda value: _parse_bytes(value, minimum=minimum, label=label)


def _parse_faults(value: Any) -> str:
    """Validate a fault-injection spec, keeping the canonical string form.

    The knob's value stays the spec *string* (plans are JSON-roundtripped
    through ``to_dict``); validation delegates to ``FaultPlan.parse`` so a
    typo fails at plan-construction time, not at the first probe.  Imported
    lazily — :mod:`repro.faults` imports this module.
    """
    spec = str(value).strip()
    if not spec:
        return ""
    from ..faults import FaultPlan

    FaultPlan.parse(spec)
    return spec


# -- the knob registry -----------------------------------------------------------------


@dataclass(frozen=True)
class Knob:
    """One tuning knob: its parser, environment alias and planner default.

    Attributes
    ----------
    name:
        The :class:`ExecutionPlan` field name.
    env:
        The per-knob environment variable consulted at the environment tier.
    legacy:
        Whether ``env`` predates the plan pipeline; reading a legacy
        variable emits a one-shot :class:`DeprecationWarning` (the variable
        keeps working — it is an alias for the plan knob, not an error).
    default:
        The static planner default, or ``None`` when the default is
        computed dynamically (backend follows
        ``UncertainDatabase.default_backend``; shards follow the resolved
        worker count).
    parse:
        Normalizer/validator applied to every explicit, scoped, env and
        spec value.
    """

    name: str
    env: str
    legacy: bool
    default: Any
    parse: Callable[[Any], Any]
    doc: str = ""


KNOBS: Dict[str, Knob] = {
    knob.name: knob
    for knob in (
        Knob(
            "backend", "REPRO_BACKEND", True, None, _parse_backend,
            "probability-evaluation backend: columnar (vectorized) or rows (oracle)",
        ),
        Knob(
            "bitset", "REPRO_BITSET", True, True, _parse_bitset,
            "bitset evaluation cascade: packed-bitmap kills + prefix caching",
        ),
        Knob(
            "fanout", "REPRO_FANOUT", True, "auto", _parse_fanout,
            "shard dispatch to workers: auto/shm descriptors or legacy pickle",
        ),
        Knob(
            "workers", "REPRO_WORKERS", True, 1, _parse_workers,
            "worker processes for the partition-parallel engine (0/auto = CPUs)",
        ),
        Knob(
            "shards", "REPRO_SHARDS", True, None, _parse_shards,
            "row shards of the columnar view (default: the worker count)",
        ),
        Knob(
            "dense_crossover", "REPRO_DENSE_CROSSOVER", False, 0.25, _parse_dense_crossover,
            "fraction of N above which itemset columns combine via dense kernels",
        ),
        Knob(
            "conv_span", "REPRO_CONV_SPAN", False, 512, _parse_conv_span,
            "PMF operand length above which convolutions go through the FFT",
        ),
        Knob(
            "dp_block_bytes", "REPRO_DP_BLOCK_BYTES", True, 128 << 20,
            _byte_parser(1, "dp_block_bytes"),
            "padded-matrix byte budget of the batched DP recurrence",
        ),
        Knob(
            "dense_cache_bytes", "REPRO_DENSE_CACHE_BYTES", True, 16 << 20,
            _byte_parser(0, "dense_cache_bytes"),
            "byte budget of the dense column cache",
        ),
        Knob(
            "bitmap_cache_bytes", "REPRO_BITMAP_CACHE_BYTES", True, 16 << 20,
            _byte_parser(0, "bitmap_cache_bytes"),
            "byte budget of the packed occupancy-bitmap cache",
        ),
        Knob(
            "prefix_cache_bytes", "REPRO_PREFIX_CACHE_BYTES", True, 32 << 20,
            _byte_parser(0, "prefix_cache_bytes"),
            "byte budget of the cross-level prefix-vector cache",
        ),
        Knob(
            "mapped_cache_bytes", "REPRO_MAPPED_CACHE_BYTES", True, 64 << 20,
            _byte_parser(0, "mapped_cache_bytes"),
            "byte budget of the mapped-store column cache",
        ),
        Knob(
            "faults", "REPRO_FAULTS", False, "", _parse_faults,
            "deterministic fault-injection spec ('' = off; ';' separates "
            "sites inside a REPRO_PLAN token)",
        ),
    )
}


# -- deprecation bookkeeping -----------------------------------------------------------

_WARNED_ENVS: set = set()
_WARNED_LOCK = threading.Lock()


def _warn_legacy_env(knob: Knob) -> None:
    if knob.env in _WARNED_ENVS:
        return
    with _WARNED_LOCK:
        if knob.env in _WARNED_ENVS:
            return
        _WARNED_ENVS.add(knob.env)
    warnings.warn(
        f"{knob.env} is deprecated; set the {knob.name!r} knob through "
        f"--plan / {PLAN_ENV} (e.g. {PLAN_ENV}={knob.name}=...) instead. "
        "The variable keeps working as an alias.",
        DeprecationWarning,
        stacklevel=4,
    )


def reset_deprecation_warnings() -> None:
    """Forget which legacy variables have warned (test helper)."""
    with _WARNED_LOCK:
        _WARNED_ENVS.clear()


# -- the plan object -------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionPlan:
    """An immutable, partially-specified assignment of tuning knobs.

    ``None`` fields are *unset*: resolution falls through to the next tier.
    Set fields are normalized at construction time through the knob parsers
    (so ``ExecutionPlan(bitset="off").bitset is False``).

    ``auto=True`` marks the plan as a request for the cost-model planner:
    when such a plan reaches a miner, the planner fills the *default* tier
    from dataset statistics (explicitly set fields, scoped plans and
    environment variables still take precedence, in that order).

    >>> plan = ExecutionPlan(workers="auto", bitset="off")
    >>> plan.bitset, plan.workers >= 1
    (False, True)
    >>> ExecutionPlan.from_dict(plan.to_dict()) == plan
    True
    """

    backend: Optional[str] = None
    bitset: Optional[bool] = None
    fanout: Optional[str] = None
    workers: Optional[int] = None
    shards: Optional[int] = None
    dense_crossover: Optional[float] = None
    conv_span: Optional[int] = None
    dp_block_bytes: Optional[int] = None
    dense_cache_bytes: Optional[int] = None
    bitmap_cache_bytes: Optional[int] = None
    prefix_cache_bytes: Optional[int] = None
    mapped_cache_bytes: Optional[int] = None
    faults: Optional[str] = None
    auto: bool = False

    def __post_init__(self) -> None:
        for name, knob in KNOBS.items():
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, knob.parse(value))
        object.__setattr__(self, "auto", bool(self.auto))

    # -- construction ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "ExecutionPlan":
        """Build a plan from a mapping, rejecting unknown keys.

        >>> ExecutionPlan.from_dict({"workers": 2}).workers
        2
        >>> ExecutionPlan.from_dict({"wrokers": 2})
        Traceback (most recent call last):
            ...
        ValueError: unknown plan knob(s): 'wrokers' (known: auto, backend, ...)
        """
        unknown = sorted(set(mapping) - set(KNOBS) - {"auto"})
        if unknown:
            known = ", ".join(sorted(list(KNOBS) + ["auto"])[:2]) + ", ..."
            listed = ", ".join(repr(key) for key in unknown)
            raise ValueError(f"unknown plan knob(s): {listed} (known: {known})")
        return cls(**dict(mapping))

    def to_dict(self) -> Dict[str, Any]:
        """The set fields as a plain dict (round-trips through from_dict)."""
        payload: Dict[str, Any] = {
            name: getattr(self, name)
            for name in KNOBS
            if getattr(self, name) is not None
        }
        if self.auto:
            payload["auto"] = True
        return payload

    # -- algebra -----------------------------------------------------------------------
    def merged_over(self, base: Optional["ExecutionPlan"]) -> "ExecutionPlan":
        """This plan layered over ``base``: our set fields win, gaps inherit."""
        if base is None:
            return self
        values = base.to_dict()
        values.update(self.to_dict())
        values["auto"] = self.auto or base.auto
        return ExecutionPlan(**values)

    def is_empty(self) -> bool:
        return not self.to_dict()

    def knob_items(self) -> Iterator[Tuple[str, Any]]:
        """Iterate ``(name, value)`` over the *set* knob fields."""
        for name in KNOBS:
            value = getattr(self, name)
            if value is not None:
                yield name, value


def ensure_plan(
    plan: Union[None, str, Mapping[str, Any], ExecutionPlan]
) -> Optional[ExecutionPlan]:
    """Coerce the common plan spellings into an :class:`ExecutionPlan`.

    Accepts ``None`` (no plan), an existing plan, a mapping, or a spec
    string (``"auto"`` / ``"workers=2,bitset=off"`` / ``"auto,workers=2"``).
    """
    if plan is None or isinstance(plan, ExecutionPlan):
        return plan
    if isinstance(plan, Mapping):
        return ExecutionPlan.from_dict(plan)
    return parse_plan_spec(str(plan))


def parse_plan_spec(spec: str) -> ExecutionPlan:
    """Parse a ``k=v,k=v`` plan spec (the ``--plan`` / ``REPRO_PLAN`` syntax).

    The bare token ``auto`` requests the cost-model planner; it may be
    combined with explicit pins (``auto,workers=2``).  Byte-budget knobs
    accept ``k``/``m``/``g`` suffixes (``dense_cache_bytes=64m``).

    >>> parse_plan_spec("workers=2,bitset=off").workers
    2
    >>> parse_plan_spec("auto").auto
    True
    """
    values: Dict[str, Any] = {}
    for token in str(spec).split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            if token.lower() == "auto":
                values["auto"] = True
                continue
            raise ValueError(
                f"bad plan spec token {token!r}: expected 'auto' or 'knob=value'"
            )
        name, _, raw = token.partition("=")
        name = name.strip()
        if name not in KNOBS:
            raise ValueError(
                f"unknown plan knob {name!r} in spec {spec!r} "
                f"(known: {', '.join(sorted(KNOBS))})"
            )
        values[name] = raw.strip()
    return ExecutionPlan.from_dict(values)


# -- scoped plans (tier 2) -------------------------------------------------------------

_ACTIVE_PLAN: ContextVar[Optional[ExecutionPlan]] = ContextVar(
    "repro_active_plan", default=None
)


def active_plan() -> Optional[ExecutionPlan]:
    """The innermost scoped plan of the *current thread/context*, if any."""
    return _ACTIVE_PLAN.get()


@contextmanager
def plan_scope(plan: Union[None, str, Mapping[str, Any], ExecutionPlan]):
    """Pin ``plan`` at the scope tier for the duration of the ``with`` block.

    Scopes nest: the inner plan's set fields shadow the outer plan's, unset
    fields inherit.  Backed by a :class:`contextvars.ContextVar`, so the
    scope is visible to the current thread (and tasks it spawns via
    ``contextvars.copy_context``) but **never** to concurrent threads —
    unlike the historical env-mutating ``bitset_scope``/``fanout_scope``.

    ``None`` (or an empty plan) is a no-op, preserving the historical
    scope-manager calling convention.
    """
    plan = ensure_plan(plan)
    if plan is None:
        yield None
        return
    merged = plan.merged_over(_ACTIVE_PLAN.get())
    token = _ACTIVE_PLAN.set(merged)
    try:
        yield merged
    finally:
        _ACTIVE_PLAN.reset(token)


# -- environment tier ------------------------------------------------------------------

_SPEC_CACHE: Dict[str, ExecutionPlan] = {}


def _env_spec_plan() -> Optional[ExecutionPlan]:
    """The parsed ``REPRO_PLAN`` spec, or ``None`` when unset/empty."""
    spec = os.environ.get(PLAN_ENV, "").strip()
    if not spec:
        return None
    plan = _SPEC_CACHE.get(spec)
    if plan is None:
        plan = parse_plan_spec(spec)
        if len(_SPEC_CACHE) > 64:  # unbounded env churn safety valve
            _SPEC_CACHE.clear()
        _SPEC_CACHE[spec] = plan
    return plan


def _env_value(knob: Knob) -> Optional[Any]:
    """The environment-tier value of ``knob``, or ``None`` when unset.

    The per-knob variable wins over the knob's entry in ``REPRO_PLAN``;
    empty-string variables count as unset (matching every historical
    resolver: ``REPRO_WORKERS=""`` meant "use the default").
    """
    raw = os.environ.get(knob.env)
    if raw is not None and raw.strip() != "":
        if knob.legacy:
            _warn_legacy_env(knob)
        return knob.parse(raw)
    spec = _env_spec_plan()
    if spec is not None:
        return getattr(spec, knob.name)
    return None


def plan_env_requests_auto() -> bool:
    """Whether ``REPRO_PLAN`` asks for the cost-model planner."""
    spec = _env_spec_plan()
    return spec is not None and spec.auto


# -- the resolution pipeline (all four tiers) ------------------------------------------


def _dynamic_default(name: str, workers: Optional[int]) -> Any:
    if name == "backend":
        # Imported lazily — repro.db.database imports this module.
        from ..db.database import UncertainDatabase

        return UncertainDatabase.default_backend
    if name == "shards":
        if workers is None:
            workers = resolve_knob("workers")
        return max(1, int(workers))
    raise AssertionError(f"knob {name!r} has no dynamic default")  # pragma: no cover


def resolve_knob(
    name: str,
    explicit: Any = None,
    *,
    workers: Optional[int] = None,
    planned: Optional[ExecutionPlan] = None,
) -> Any:
    """Resolve one knob through the four-tier pipeline.

    Args:
        name: A knob name from :data:`KNOBS`.
        explicit: Tier-1 explicit value (``None`` = unset).
        workers: The already-resolved worker count, consulted only for the
            ``shards`` dynamic default.
        planned: A planner-produced plan consulted at the *default* tier
            (below the environment — the planner fills gaps, it never
            overrides a user setting).

    >>> resolve_knob("bitset")
    True
    >>> resolve_knob("workers", "auto") >= 1
    True
    """
    knob = KNOBS[name]
    if explicit is not None:
        return knob.parse(explicit)
    scope = _ACTIVE_PLAN.get()
    if scope is not None:
        value = getattr(scope, name)
        if value is not None:
            return value
    value = _env_value(knob)
    if value is not None:
        return value
    if planned is not None:
        value = getattr(planned, name)
        if value is not None:
            return value
    if knob.default is not None:
        return knob.default
    return _dynamic_default(name, workers)


def resolve_all(
    explicit: Optional[Mapping[str, Any]] = None,
    planned: Optional[ExecutionPlan] = None,
) -> ExecutionPlan:
    """Resolve every knob, returning a fully-specified plan.

    ``explicit`` supplies tier-1 values per knob; ``planned`` supplies
    default-tier values (the planner's choices).  The result has every
    field set and ``auto=False`` — it is the *materialized* configuration
    of a run, suitable for :func:`plan_scope` pinning, cache keys and
    reporting.
    """
    explicit = explicit or {}
    values: Dict[str, Any] = {}
    values["workers"] = resolve_knob("workers", explicit.get("workers"), planned=planned)
    for name in KNOBS:
        if name == "workers":
            continue
        values[name] = resolve_knob(
            name, explicit.get(name), workers=values["workers"], planned=planned
        )
    return ExecutionPlan(**values)
