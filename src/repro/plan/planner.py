"""The cost-model planner behind ``--plan auto``.

Given a dataset, the :class:`Planner` extracts a small set of statistics
(:class:`DatasetFeatures`), runs them through an analytic cost model whose
coefficients are fit from the checked-in benchmark trajectory
(``BENCH_summary.json``), and emits a :class:`PlanDecision`: a concrete
:class:`~repro.plan.spec.ExecutionPlan` plus the predicted cost and a
per-knob rationale.

The planner's output enters the resolution pipeline at the **default**
tier: it fills the knobs the caller left unset, and never overrides an
explicit argument, a scoped plan, or an environment variable (see
:func:`repro.plan.spec.resolve_knob`).

Soundness: every knob the planner tunes is either bitwise-neutral (bitset,
fanout, workers, shards, crossover, byte budgets — pinned by the
equivalence suites) or part of the materialized plan that downstream
consumers key on (backend, conv_span), so an auto-planned mine is always
byte-identical to the same plan spelled out by hand.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from ..core.thresholds import QueryThresholds
from .spec import (
    ExecutionPlan,
    KNOBS,
    ensure_plan,
    plan_env_requests_auto,
    plan_scope,
    resolve_all,
)

__all__ = [
    "DatasetFeatures",
    "PlanDecision",
    "Planner",
    "materialize_plan",
    "plan_request_is_auto",
]


def _clamp(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))


@dataclass(frozen=True)
class DatasetFeatures:
    """The statistics the cost model sees.

    Extracted from the columnar view's per-item summaries, which are cheap
    even for memory-mapped stores (one pass over the probability planes —
    no per-transaction Python loops).
    """

    n_transactions: int
    n_items: int
    nnz: int
    density: float          #: nnz / (N * V) — matrix fill fraction
    avg_length: float       #: nnz / N — stored units per transaction
    avg_probability: float  #: mean stored probability (sum esup / nnz)
    prob_skew: float        #: sum Var / sum esup in (0, 1]: 0 = certain items

    @classmethod
    def from_database(cls, database: Any) -> "DatasetFeatures":
        """Compute features from an :class:`~repro.db.database.UncertainDatabase`.

        Accepts anything exposing ``columnar()`` (a database) or the view
        protocol itself (``item_statistics``/``n_transactions``).
        """
        view = database.columnar() if hasattr(database, "columnar") else database
        n = int(view.n_transactions)
        statistics = view.item_statistics()
        v = len(statistics)
        nnz = int(view.nnz())
        total_esup = sum(esup for esup, _ in statistics.values())
        total_var = sum(var for _, var in statistics.values())
        return cls(
            n_transactions=n,
            n_items=v,
            nnz=nnz,
            density=(nnz / (n * v)) if n and v else 0.0,
            avg_length=(nnz / n) if n else 0.0,
            avg_probability=(total_esup / nnz) if nnz else 0.0,
            prob_skew=(total_var / total_esup) if total_esup else 0.0,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_transactions": self.n_transactions,
            "n_items": self.n_items,
            "nnz": self.nnz,
            "density": self.density,
            "avg_length": self.avg_length,
            "avg_probability": self.avg_probability,
            "prob_skew": self.prob_skew,
        }


@dataclass(frozen=True)
class PlanDecision:
    """A planner verdict: the chosen knobs, the prediction, and the why."""

    plan: ExecutionPlan
    features: DatasetFeatures
    predicted_seconds: float
    rationale: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan.to_dict(),
            "features": self.features.to_dict(),
            "predicted_seconds": self.predicted_seconds,
            "rationale": dict(self.rationale),
        }


#: analytic cost-model coefficients, measured on the shapes in the checked-in
#: trajectory (BENCH_summary.json); ``Planner.from_trajectory`` re-derives the
#: relative factors from the live file when one is available.
DEFAULT_COEFFICIENTS: Dict[str, float] = {
    # stored units evaluated per second by one columnar worker, cascade on
    "columnar_units_per_second": 2.5e7,
    # columnar-vs-rows level-evaluation advantage (backend_columnar bench)
    "rows_slowdown": 20.0,
    # bitset-cascade level-evaluation advantage (bitset_cascade bench)
    "bitset_speedup": 3.5,
    # one-off cost of forking a worker pool, per worker
    "pool_spawn_seconds": 0.06,
    # per-level coordination cost of a pool dispatch
    "dispatch_seconds": 0.004,
    # candidate levels a typical mine walks (Apriori depth estimate base)
    "level_depth": 3.0,
}

#: estimated work (stored units x levels) below which forking a pool is a loss
_PARALLEL_WORK_FLOOR = 3.0e7


class Planner:
    """Pick an :class:`ExecutionPlan` from :class:`DatasetFeatures`.

    The model is deliberately small and transparent: a handful of measured
    throughput coefficients and closed-form decisions per knob, rather than
    an opaque learned model — every choice is reported in the decision's
    ``rationale`` (surfaced by ``repro-mine plan-explain`` and the service
    ``plan`` op).
    """

    def __init__(self, coefficients: Optional[Mapping[str, float]] = None) -> None:
        merged = dict(DEFAULT_COEFFICIENTS)
        if coefficients:
            merged.update(coefficients)
        self.coefficients = merged

    @classmethod
    def from_trajectory(cls, path: Optional[str] = None) -> "Planner":
        """Fit the relative coefficients from a ``BENCH_summary.json`` file.

        Missing or unreadable trajectories fall back to the checked-in
        defaults — the planner must work in installed environments that do
        not ship the benchmark corpus.
        """
        if path is None:
            candidate = os.path.join(
                os.path.dirname(__file__), "..", "..", "..", "BENCH_summary.json"
            )
            path = os.path.normpath(candidate)
        overrides: Dict[str, float] = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                benches = json.load(handle).get("benches", {})
        except (OSError, ValueError):
            return cls()
        backend = benches.get("backend_columnar", {}).get("speedups", {})
        if backend.get("level_speedup"):
            overrides["rows_slowdown"] = _clamp(
                float(backend["level_speedup"]), 2.0, 200.0
            )
        cascade = benches.get("bitset_cascade", {}).get("speedups", {})
        if cascade.get("level_speedup"):
            overrides["bitset_speedup"] = _clamp(
                float(cascade["level_speedup"]), 1.0, 16.0
            )
        return cls(overrides)

    # -- decisions ---------------------------------------------------------------------
    def estimated_depth(
        self,
        features: DatasetFeatures,
        thresholds: Optional[QueryThresholds] = None,
    ) -> float:
        """Estimated candidate-level depth of a mine over ``features``.

        The base estimate grows with transaction length (longer transactions
        sustain deeper frequent itemsets).  When the query ``thresholds``
        are known they scale it: a looser support threshold admits more
        items per level and deepens the search (the reference point 0.3 is
        the support ratio the base coefficient was measured at), and a
        higher ``pft`` thins the Definition-4 frequent set, ending the
        search earlier.  Both corrections are clamped — thresholds shift
        the depth estimate, they never dominate the dataset shape.
        """
        depth = (
            self.coefficients["level_depth"]
            * max(features.avg_length, 1.0) ** 0.25
        )
        if thresholds is not None:
            ratio = thresholds.support_ratio(features.n_transactions)
            if ratio is not None and ratio > 0.0:
                depth *= _clamp((0.3 / ratio) ** 0.5, 0.5, 2.0)
            if thresholds.pft is not None:
                depth *= _clamp(1.25 - 0.5 * thresholds.pft, 0.75, 1.0)
        return _clamp(depth, 1.0, 8.0)

    def plan(
        self,
        features: DatasetFeatures,
        workers_cap: Optional[int] = None,
        thresholds: Optional[QueryThresholds] = None,
    ) -> PlanDecision:
        """The planner's configuration for a dataset with ``features``."""
        c = self.coefficients
        rationale: Dict[str, str] = {}

        backend = "columnar"
        rationale["backend"] = (
            f"columnar: batched level evaluation is ~{c['rows_slowdown']:.0f}x "
            "the per-row oracle on every measured shape"
        )

        bitset = True
        rationale["bitset"] = (
            f"on: the cascade's bitmap kills win ~{c['bitset_speedup']:.1f}x on "
            "dense shapes and never lose measurably on sparse ones"
        )

        levels = self.estimated_depth(features, thresholds)
        if thresholds is not None and thresholds.min_support is not None:
            rationale["depth"] = (
                f"{levels:.1f} levels: base shape estimate scaled by the "
                f"query thresholds (min_support={thresholds.min_support:g}"
                + (
                    f", pft={thresholds.pft:g}"
                    if thresholds.pft is not None
                    else ""
                )
                + ")"
            )
        else:
            rationale["depth"] = (
                f"{levels:.1f} levels: dataset-shape estimate "
                "(no query thresholds supplied)"
            )
        work = features.nnz * levels
        if workers_cap is None:
            workers_cap = os.cpu_count() or 1
        if work < _PARALLEL_WORK_FLOOR:
            workers = 1
            rationale["workers"] = (
                f"1: estimated work {work:.0f} unit-levels is below the "
                f"{_PARALLEL_WORK_FLOOR:.0f} floor where pool fork+dispatch "
                "overhead pays for itself"
            )
        else:
            span = work / _PARALLEL_WORK_FLOOR
            workers = int(_clamp(2 ** math.ceil(math.log2(span + 1)), 2, workers_cap))
            rationale["workers"] = (
                f"{workers}: estimated work {work:.0f} unit-levels amortizes "
                "pool startup across shards"
            )
        shards = max(1, workers)
        rationale["shards"] = f"{shards}: one row shard per worker"

        fanout = "auto"
        rationale["fanout"] = (
            "auto: shared-memory/store descriptors are never slower than pickles"
        )

        dense_crossover = 0.25
        rationale["dense_crossover"] = (
            "0.25: the measured sparse-vs-dense combine crossover "
            "(bitset_cascade crossover sweep)"
        )

        conv_span = 512
        rationale["conv_span"] = (
            "512: direct convolution wins below ~512-entry operands "
            "(ablation_convolution span sweep); FFT wins above"
        )

        # Cache budgets: size for the working set instead of the fixed
        # defaults.  Dense columns cost 8N bytes; bitmaps N/8; prefix
        # vectors 8N.  All bitwise-neutral.
        dense_bytes = int(
            _clamp(8 * features.n_transactions * min(features.n_items, 512),
                   16 << 20, 256 << 20)
        )
        bitmap_bytes = int(
            _clamp(features.n_transactions // 8 * min(features.n_items, 4096),
                   16 << 20, 128 << 20)
        )
        prefix_bytes = int(
            _clamp(8 * features.n_transactions * 64, 32 << 20, 256 << 20)
        )
        mapped_bytes = int(_clamp(16 * features.nnz, 64 << 20, 512 << 20))
        rationale["cache_budgets"] = (
            "sized to the working set (8N bytes per dense column, N/8 per "
            "bitmap, clamped to [default, 256M]); byte budgets never change bits"
        )

        plan = ExecutionPlan(
            backend=backend,
            bitset=bitset,
            fanout=fanout,
            workers=workers,
            shards=shards,
            dense_crossover=dense_crossover,
            conv_span=conv_span,
            dp_block_bytes=KNOBS["dp_block_bytes"].default,
            dense_cache_bytes=dense_bytes,
            bitmap_cache_bytes=bitmap_bytes,
            prefix_cache_bytes=prefix_bytes,
            mapped_cache_bytes=mapped_bytes,
        )
        predicted = self.predict_seconds(features, plan, thresholds)
        return PlanDecision(
            plan=plan,
            features=features,
            predicted_seconds=predicted,
            rationale=rationale,
        )

    def predict_seconds(
        self,
        features: DatasetFeatures,
        plan: ExecutionPlan,
        thresholds: Optional[QueryThresholds] = None,
    ) -> float:
        """Predicted wall-clock of a full mine under ``plan``."""
        c = self.coefficients
        levels = self.estimated_depth(features, thresholds)
        throughput = c["columnar_units_per_second"]
        if (plan.backend or "columnar") == "rows":
            throughput /= c["rows_slowdown"]
        elif not (plan.bitset if plan.bitset is not None else True):
            throughput /= c["bitset_speedup"]
        workers = plan.workers or 1
        compute = features.nnz * levels / throughput
        if workers > 1:
            compute = compute / workers + workers * c["pool_spawn_seconds"]
            compute += levels * c["dispatch_seconds"]
        return compute


# -- plan materialization --------------------------------------------------------------


def plan_request_is_auto(
    plan: Union[None, str, Mapping[str, Any], ExecutionPlan]
) -> bool:
    """Whether ``plan`` (or, failing that, ``REPRO_PLAN``) requests auto."""
    request = ensure_plan(plan)
    if request is not None and request.auto:
        return True
    if request is None:
        return plan_env_requests_auto()
    return False


def materialize_plan(
    plan: Union[None, str, Mapping[str, Any], ExecutionPlan] = None,
    database: Any = None,
    explicit: Optional[Mapping[str, Any]] = None,
    planner: Optional[Planner] = None,
    thresholds: Optional[QueryThresholds] = None,
) -> ExecutionPlan:
    """Resolve a plan request into a fully-specified :class:`ExecutionPlan`.

    This is *the* entry point of the four-tier pipeline for whole runs: the
    miners, the CLI and the service all funnel through it.  ``explicit``
    carries tier-1 per-knob arguments (a miner's ``backend=``/``workers=``
    constructor parameters); ``plan`` enters at the scope tier; the
    environment is consulted as usual; and when the request asks for
    ``auto`` (directly or via ``REPRO_PLAN=auto``) the cost model fills the
    default tier from ``database``'s statistics.

    The result has every knob set and ``auto=False``; pinning it with
    :func:`~repro.plan.spec.plan_scope` freezes the whole configuration for
    the run, immune to concurrent env changes or other threads' plans.

    Materialization is deterministic: the same request, database and
    environment always yield the same plan — which is what makes
    auto-planned results bitwise-reproducible from the reported plan.
    """
    request = ensure_plan(plan)
    planned: Optional[ExecutionPlan] = None
    if plan_request_is_auto(request if request is not None else plan) and database is not None:
        if planner is None:
            planner = Planner.from_trajectory()
        planned = planner.plan(
            DatasetFeatures.from_database(database), thresholds=thresholds
        ).plan
    with plan_scope(request):
        return resolve_all(explicit=explicit, planned=planned)
