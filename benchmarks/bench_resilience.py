"""Resilience benchmark: serving throughput and recovery under faults.

Boots a :class:`repro.service.MiningServer`, then measures the same
request stream twice:

* **Fault-free** — N uncached mines through a retrying client: the
  baseline throughput and the golden (bitwise) answers.
* **Faulted** — an identical stream under a seeded 10% ``socket-drop``
  plan: every tenth reply (deterministically chosen) is eaten by an RST
  and transparently re-requested by the client's retry loop.

Separately, one mine is timed with a ``worker-crash@1`` plan active —
the pool loses a worker mid-batch, rebuilds, and resubmits — to bound
the recovery latency of the parallel layer.

Asserted contracts (the acceptance bar of the robustness PR):

* every faulted-run reply is **bitwise identical** to its fault-free
  golden twin (retries never change answers),
* throughput under the 10% fault rate stays >= 0.5x fault-free,
* crash recovery completes within the per-request timeout ceiling.

Sizing knobs (environment): ``REPRO_RESILIENCE_BENCH_ROWS`` (default
5000), ``REPRO_RESILIENCE_BENCH_ITEMS`` (default 16),
``REPRO_RESILIENCE_BENCH_REQUESTS`` (default 40),
``REPRO_RESILIENCE_BENCH_DROP_RATE`` (default 0.1).

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py [--json]
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Any, Dict, List, Tuple

from benchio import bench_main

#: thresholds low enough that every request pays for a real level-wise
#: search (recovery must re-do actual work, not a singleton scan)
MIN_ESUP_GRID = [0.08, 0.10, 0.12, 0.15]
HOT_ITEMS = 8

DEFAULT_ROWS = 20_000
DEFAULT_ITEMS = 16
DEFAULT_REQUESTS = 40
DEFAULT_DROP_RATE = 0.1

#: per-request ceiling the crash-recovery mine must come in under
RECOVERY_TIMEOUT_SECONDS = 30.0


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else default


def _build_store(directory: str, n_rows: int, n_items: int, seed: int = 29):
    import numpy as np

    from repro.db.store import ColumnarStore

    rng = np.random.default_rng(seed)
    with ColumnarStore.writer(
        directory, n_rows, name=f"resilience-bench-{n_rows}x{n_items}"
    ) as writer:
        for item in range(n_items):
            density = 0.6 if item < HOT_ITEMS else 0.25
            rows = np.flatnonzero(rng.random(n_rows) < density).astype(np.int64)
            probs = 0.5 + 0.4 * rng.random(rows.size)
            writer.add_column(item, rows, probs)
    return ColumnarStore.open(directory)


def _drive(client, requests: List[Dict[str, Any]]) -> Tuple[float, List[Any]]:
    """Issue every request uncached; (wall seconds, reply itemsets)."""
    replies = []
    started = time.perf_counter()
    for params in requests:
        replies.append(client.mine(cache=False, **params)["itemsets"])
    return time.perf_counter() - started, replies


def collect() -> Dict[str, Any]:
    from repro import faults
    from repro.service import MiningClient, MiningServer

    n_rows = _env_int("REPRO_RESILIENCE_BENCH_ROWS", DEFAULT_ROWS)
    n_items = _env_int("REPRO_RESILIENCE_BENCH_ITEMS", DEFAULT_ITEMS)
    n_requests = _env_int("REPRO_RESILIENCE_BENCH_REQUESTS", DEFAULT_REQUESTS)
    drop_rate = _env_float("REPRO_RESILIENCE_BENCH_DROP_RATE", DEFAULT_DROP_RATE)

    requests = [
        {
            "dataset": "bench",
            "algorithm": "uapriori",
            "min_esup": MIN_ESUP_GRID[index % len(MIN_ESUP_GRID)],
        }
        for index in range(n_requests)
    ]

    with tempfile.TemporaryDirectory(prefix="repro-resilience-bench-") as directory:
        store_dir = os.path.join(directory, "store")
        _build_store(store_dir, n_rows, n_items)

        with MiningServer(
            max_workers=4, max_queue=64, timeout_seconds=RECOVERY_TIMEOUT_SECONDS
        ) as server:
            host, port = server.address
            with MiningClient(
                host, port, timeout_seconds=300.0, jitter_seconds=0.0
            ) as client:
                client.register("bench", kind="store", directory=store_dir)

                fault_free_seconds, golden = _drive(client, requests)

            # Same stream, same server, 10% of replies deterministically
            # dropped: the client's retry loop must absorb every loss and
            # reproduce the golden answers bit for bit.
            # seed 9 lands 4 fires in the first ~40 probes — right on the
            # 10% expectation, so the retry path is genuinely exercised
            with faults.faults_active(f"seed=9,socket-drop={drop_rate}") as injector:
                with MiningClient(
                    host,
                    port,
                    timeout_seconds=300.0,
                    retries=6,
                    backoff_seconds=0.005,
                    jitter_seconds=0.0,
                ) as client:
                    faulted_seconds, faulted = _drive(client, requests)
                    retries_performed = client.retries_performed
                drops_fired = injector.counters()["socket-drop"]["fired"]
            for index, (fresh, replayed) in enumerate(zip(golden, faulted)):
                assert replayed == fresh, (
                    f"request {index} under {drop_rate:.0%} socket-drop is not "
                    "bitwise identical to its fault-free twin"
                )

            # Crash recovery: one parallel mine with a worker SIGKILLed
            # mid-batch must finish (pool rebuild + resubmit) inside the
            # per-request timeout ceiling.
            with MiningClient(host, port, timeout_seconds=300.0) as client:
                params = dict(requests[0], workers=2, shards=2)
                started = time.perf_counter()
                baseline_parallel = client.mine(cache=False, **params)
                parallel_seconds = time.perf_counter() - started
                with faults.faults_active("worker-crash=@1") as injector:
                    started = time.perf_counter()
                    recovered = client.mine(cache=False, **params)
                    recovery_seconds = time.perf_counter() - started
                    crashes_fired = injector.counters()["worker-crash"]["fired"]
                assert recovered["itemsets"] == baseline_parallel["itemsets"], (
                    "post-crash mine is not bitwise identical to the baseline"
                )

    assert crashes_fired >= 1, "the worker-crash site never fired"
    assert recovery_seconds <= RECOVERY_TIMEOUT_SECONDS, (
        f"crash recovery took {recovery_seconds:.2f}s, above the "
        f"{RECOVERY_TIMEOUT_SECONDS:.0f}s request-timeout ceiling"
    )

    fault_free_rps = len(requests) / fault_free_seconds
    faulted_rps = len(requests) / faulted_seconds
    throughput_ratio = faulted_rps / fault_free_rps
    assert throughput_ratio >= 0.5, (
        f"throughput under {drop_rate:.0%} faults is {throughput_ratio:.2f}x "
        "fault-free; the resilience contract is >= 0.5x"
    )

    return {
        "config": {
            "n_transactions": n_rows,
            "n_items": n_items,
            "n_requests": n_requests,
            "drop_rate": drop_rate,
            "min_esup_grid": MIN_ESUP_GRID,
            "drops_fired": drops_fired,
            "client_retries": retries_performed,
            "crashes_fired": crashes_fired,
        },
        "timings": {
            "fault_free_seconds": fault_free_seconds,
            "faulted_seconds": faulted_seconds,
            "parallel_baseline_seconds": parallel_seconds,
            "crash_recovery_seconds": recovery_seconds,
        },
        "metrics": {
            "fault_free_throughput_rps": fault_free_rps,
            "faulted_throughput_rps": faulted_rps,
            "recovery_timeout_ceiling_seconds": RECOVERY_TIMEOUT_SECONDS,
        },
        "speedups": {
            "faulted_vs_fault_free_throughput": throughput_ratio,
        },
    }


if __name__ == "__main__":
    import sys

    sys.exit(bench_main("resilience", collect))
