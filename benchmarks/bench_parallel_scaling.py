"""Partition-parallel scaling: speedup vs worker count on dense data.

The workload is the paper's dominant cost at scale — the exact DP tail
evaluation of a full Apriori level over a dense N >= 2000 database — plus a
complete DPNB mine, both repeated at increasing worker counts with one row
shard per worker.  Every configuration is checked to return byte-identical
probabilities/itemsets before its timing is reported (parallelism is not
allowed to buy speed with drift).

Measured quantities land in ``benchmarks/results/bench_parallel_scaling.csv``:

* ``level_seconds_w{K}`` / ``level_speedup_w{K}`` — one exact-DP level
  evaluation through a ``K``-worker executor, relative to ``K = 1``;
* ``mine_seconds_w{K}`` / ``mine_speedup_w{K}`` — a full ``dpnb`` mine
  (no Chernoff pruning, so the exact DP dominates the run) with
  ``workers = shards = K``.

Speedup is asserted only up to the machine's usable core count (a 4-worker
pool cannot beat serial on a 1-core container); the worker counts exercised
default to 1/2/4 and can be trimmed with ``REPRO_BENCH_MAX_WORKERS`` (the
CI docs job smokes the benchmark with 2 workers).

Run with ``pytest benchmarks/bench_parallel_scaling.py -s`` or directly as
a script.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

import numpy as np

from repro.algorithms.common import apriori_join, frequent_items_by_expected_support
from repro.core.miner import mine
from repro.core.parallel import ParallelExecutor
from repro.core.support import SupportEngine
from repro.eval import reporting

from bench_backend_columnar import make_dense_database
from conftest import RESULTS_DIR, emit

#: probabilistic threshold of the timed workload (dense regime of Figure 5)
MIN_SUP_RATIO = 0.15
PFT = 0.9

#: worker counts exercised; trimmed by REPRO_BENCH_MAX_WORKERS when set
WORKER_COUNTS = [1, 2, 4]
_MAX_WORKERS_ENV = os.environ.get("REPRO_BENCH_MAX_WORKERS", "").strip()
if _MAX_WORKERS_ENV:
    WORKER_COUNTS = [w for w in WORKER_COUNTS if w <= int(_MAX_WORKERS_ENV)] or [1]

#: minimum speedup demanded of the largest worker count the hardware can
#: actually run concurrently (kept modest: CI machines are small and noisy)
SPEEDUP_FLOOR = 1.1

#: set REPRO_BENCH_REQUIRE_SPEEDUP=0 to report timings without gating on
#: them (used by the CI smoke run, where shared runners make wall-clock
#: ratios unreliable; byte-identity is always asserted regardless)
REQUIRE_SPEEDUP = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP", "1").strip() != "0"


def _usable_cores() -> int:
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def _level_workload(database):
    """The exact-DP inputs of one full level-2 evaluation."""
    min_count = int(MIN_SUP_RATIO * len(database))
    frequent = sorted(
        frequent_items_by_expected_support(database, min_count * PFT)
    )
    candidates = apriori_join([(item,) for item in frequent])
    vectors = database.columnar().batch_vectors(candidates)
    return vectors, min_count


def _time_level(vectors, min_count: int, workers: int, repeats: int = 3):
    """Best-of-``repeats`` timing of one chunked DP level evaluation."""
    best = float("inf")
    tails = None
    with ParallelExecutor(workers=workers) as executor:
        engine = SupportEngine(vectors, executor=executor if workers > 1 else None)
        for _ in range(repeats):
            started = time.perf_counter()
            current = engine.frequent_probabilities(min_count)
            best = min(best, time.perf_counter() - started)
            tails = current
    return best, tails


def run_benchmark() -> Dict[str, float]:
    database = make_dense_database()
    vectors, min_count = _level_workload(database)

    measurements: Dict[str, float] = {
        "n_transactions": float(len(database)),
        "n_candidates": float(len(vectors)),
        "min_count": float(min_count),
        "usable_cores": float(_usable_cores()),
    }

    reference_tails = None
    reference_level_seconds = None
    for workers in WORKER_COUNTS:
        seconds, tails = _time_level(vectors, min_count, workers)
        if reference_tails is None:
            reference_tails, reference_level_seconds = tails, seconds
        else:
            assert np.array_equal(tails, reference_tails), (
                f"{workers}-worker DP tails drifted from serial"
            )
        measurements[f"level_seconds_w{workers}"] = seconds
        measurements[f"level_speedup_w{workers}"] = reference_level_seconds / seconds

    reference_result = None
    reference_mine_seconds = None
    for workers in WORKER_COUNTS:
        result = mine(
            database,
            algorithm="dpnb",
            min_sup=MIN_SUP_RATIO,
            pft=PFT,
            workers=workers,
            shards=workers,
        )
        seconds = result.statistics.elapsed_seconds
        if reference_result is None:
            reference_result, reference_mine_seconds = result, seconds
        else:
            assert result.itemset_keys() == reference_result.itemset_keys()
            for record in result:
                reference = reference_result[record.itemset]
                assert record.frequent_probability == reference.frequent_probability
        measurements[f"mine_seconds_w{workers}"] = seconds
        measurements[f"mine_speedup_w{workers}"] = reference_mine_seconds / seconds

    return measurements


class _Point:
    """Minimal row shim for the shared CSV writer."""

    def __init__(self, payload: Dict[str, float]) -> None:
        self._payload = payload

    def as_dict(self) -> Dict[str, object]:
        return dict(self._payload)


def _report(measurements: Dict[str, float]) -> None:
    rows: List[Dict[str, float]] = [
        {"measure": key, "value": value} for key, value in measurements.items()
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    reporting.write_csv(
        [_Point(row) for row in rows], RESULTS_DIR / "bench_parallel_scaling.csv"
    )
    emit(
        "Partition-parallel scaling (DP level + full dpnb mine)",
        reporting.format_table(rows, ["measure", "value"]),
    )


def _assert_speedup(measurements: Dict[str, float]) -> None:
    """Demand speedup from the largest worker count the hardware can run."""
    cores = _usable_cores()
    runnable = [w for w in WORKER_COUNTS if 1 < w <= cores]
    if not REQUIRE_SPEEDUP:
        print("(speedup assertion disabled via REPRO_BENCH_REQUIRE_SPEEDUP=0)")
        return
    if not runnable:
        print(
            f"(speedup assertion skipped: {cores} usable core(s) cannot "
            "outrun the serial baseline)"
        )
        return
    target = max(runnable)
    speedup = measurements[f"level_speedup_w{target}"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"{target}-worker level evaluation speedup {speedup:.2f}x "
        f"below floor {SPEEDUP_FLOOR}x: {measurements}"
    )


def test_parallel_scaling_speedup():
    measurements = run_benchmark()
    _report(measurements)
    _assert_speedup(measurements)


def json_payload():
    """Machine-readable measurements for the benchmark trajectory (--json).

    Keeps the direct-run behaviour of the historical ``__main__``: the
    human-readable report is printed and the speedup floor asserted
    (``REPRO_BENCH_REQUIRE_SPEEDUP=0`` disables the floor, as before).
    """
    from benchio import split_measurements

    measurements = run_benchmark()
    _report(measurements)
    _assert_speedup(measurements)
    return split_measurements(measurements)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("parallel_scaling", json_payload))
