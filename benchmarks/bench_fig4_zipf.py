"""Figure 4(k-l): effect of the Zipf skew on the expected-support miners.

Probabilities follow a Zipf law over a dense (Connect-like) item structure;
increasing skew pushes more occurrences to zero probability, so running time
and memory shrink — the trend the paper reports.
"""

import pytest

from repro.core import mine
from repro.datasets import make_zipf_dense
from repro.eval import figure4_zipf, run_experiment

from conftest import emit, save_and_render

ALGORITHMS = ("uapriori", "uh-mine", "ufp-growth")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("skew", [0.8, 2.0])
def test_fig4_zipf_point(benchmark, algorithm, skew):
    database = make_zipf_dense(skew=skew, n_transactions=600)
    benchmark.group = f"fig4-zipf:skew={skew}"
    result = benchmark(lambda: mine(database, algorithm=algorithm, min_esup=0.05))
    assert len(result) >= 0


def test_fig4_zipf_report(benchmark):
    spec = figure4_zipf()
    points = benchmark.pedantic(lambda: run_experiment(spec), rounds=1, iterations=1)
    emit(spec.title, save_and_render(points, spec.experiment_id))
    # Higher skew => fewer frequent itemsets (monotone non-increasing trend).
    for algorithm in spec.algorithms:
        series = sorted(
            (point.value, point.n_itemsets) for point in points if point.algorithm == algorithm
        )
        assert series[0][1] >= series[-1][1]


def json_payload(max_points=None):
    """Machine-readable sweep results for the benchmark trajectory (--json)."""
    from benchio import sweep_payload
    from repro.eval import run_experiment

    return sweep_payload([figure4_zipf()], run_experiment, max_points=max_points)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("fig4_zipf", json_payload))
