"""Table 9: precision/recall of the approximate miners on the sparse Kosarak analogue.

The paper reports recall 1 everywhere and precision dipping slightly below 1
as ``min_sup`` decreases (a few false positives from the approximation).
"""

from repro.eval import run_accuracy_experiment, table9_accuracy_sparse

from conftest import emit, save_and_render, SCALE


def test_table9_report(benchmark):
    spec = table9_accuracy_sparse(SCALE)
    points = benchmark.pedantic(
        lambda: run_accuracy_experiment(spec, reference_algorithm="dcb"),
        rounds=1,
        iterations=1,
    )
    emit(spec.title, save_and_render(points, spec.experiment_id, kind="accuracy"))
    for point in points:
        if point.algorithm in ("ndu-apriori", "nduh-mine"):
            assert point.recall >= 0.9
            assert point.precision >= 0.8


def json_payload(max_points=None):
    """Machine-readable accuracy sweep for the benchmark trajectory (--json)."""
    from benchio import sweep_payload
    from repro.eval import run_accuracy_experiment

    return sweep_payload(
        [table9_accuracy_sparse(SCALE)],
        run_accuracy_experiment,
        max_points=max_points,
        reference_algorithm="dcb",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("table9_accuracy_sparse", json_payload))
