"""Figure 6(i-j): scalability of the approximate probabilistic miners on T25I15D."""

import pytest

from repro.core import mine
from repro.eval import figure6_scalability, run_experiment

from conftest import emit, save_and_render

ALGORITHMS = ("pdu-apriori", "ndu-apriori", "nduh-mine")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig6_scalability_point(benchmark, quest_db, algorithm):
    benchmark.group = "fig6-scalability:t25i15d-800"
    result = benchmark(lambda: mine(quest_db, algorithm=algorithm, min_sup=0.1, pft=0.9))
    assert len(result) >= 0


def test_fig6_scalability_report(benchmark):
    spec = figure6_scalability()
    points = benchmark.pedantic(lambda: run_experiment(spec), rounds=1, iterations=1)
    emit(spec.title, save_and_render(points, spec.experiment_id))
    for algorithm in ALGORITHMS:
        series = sorted(
            (point.value, point.elapsed_seconds)
            for point in points
            if point.algorithm == algorithm
        )
        assert series[-1][1] >= series[0][1]


def json_payload(max_points=None):
    """Machine-readable sweep results for the benchmark trajectory (--json)."""
    from benchio import sweep_payload
    from repro.eval import run_experiment

    return sweep_payload([figure6_scalability()], run_experiment, max_points=max_points)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("fig6_scalability", json_payload))
