"""Machine-readable benchmark output: the ``--json`` flag of every bench.

Every ``benchmarks/bench_*.py`` module exposes a ``json_payload()`` callable
returning a plain dictionary — ``config`` (the parameters the numbers were
measured under), ``timings`` (seconds), and, where the benchmark measures a
ratio, ``speedups`` — and routes its ``__main__`` through
:func:`bench_main`, which adds a uniform command line::

    python benchmarks/bench_<name>.py --json [--json-dir DIR]

``--json`` writes ``BENCH_<name>.json`` (default directory:
``benchmarks/results``).  ``benchmarks/run_all.py`` drives any subset of
the benchmarks in this mode and folds the individual documents into a
repo-root ``BENCH_summary.json`` so the performance trajectory of the
repository is tracked in one machine-readable place across PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Callable, Dict, Optional

#: repository root (two levels up from this file)
REPO_ROOT = Path(__file__).resolve().parent.parent
#: default landing directory of the per-benchmark JSON documents
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: schema version of the BENCH_*.json documents
SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce NumPy scalars/arrays and other oddballs into JSON types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "tolist"):  # ndarray / numpy scalar
        return _jsonable(value.tolist())
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def environment_stamp() -> Dict[str, Any]:
    """The measurement context recorded into every document."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scale": os.environ.get("REPRO_SCALE", "0.002"),
        "backend": os.environ.get("REPRO_BACKEND", "") or "columnar",
        "bitset": os.environ.get("REPRO_BITSET", "") or "on",
        "workers": os.environ.get("REPRO_WORKERS", "") or "1",
        "shards": os.environ.get("REPRO_SHARDS", "") or "",
    }


def write_bench_json(
    name: str, payload: Dict[str, Any], directory: Optional[os.PathLike] = None
) -> Path:
    """Write one benchmark's ``BENCH_<name>.json`` document and return its path."""
    target_dir = Path(directory) if directory is not None else RESULTS_DIR
    target_dir.mkdir(parents=True, exist_ok=True)
    document = {
        "bench": name,
        "schema": SCHEMA_VERSION,
        "environment": environment_stamp(),
    }
    document.update(_jsonable(payload))
    path = target_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def _print_payload(payload: Dict[str, Any]) -> None:
    for section in ("config", "timings", "speedups"):
        values = payload.get(section)
        if not values:
            continue
        print(f"[{section}]")
        for key, value in values.items():
            print(f"  {key:32s} {value}")
    points = payload.get("points")
    if points:
        print(f"[points] {len(points)} rows")


def split_measurements(measurements: Dict[str, Any]) -> Dict[str, Any]:
    """Split a flat measurement dict into config / timings / speedups sections.

    Keys mentioning ``seconds`` are timings, keys mentioning ``speedup``
    are speedups, everything else is configuration/shape — the convention
    of the ``run_benchmark()``-style micro-benchmarks.
    """
    sections = {"config": {}, "timings": {}, "speedups": {}}
    for key, value in measurements.items():
        if "speedup" in key:
            sections["speedups"][key] = value
        elif "seconds" in key:
            sections["timings"][key] = value
        else:
            sections["config"][key] = value
    return sections


def bench_main(
    name: str,
    collect: Callable[..., Dict[str, Any]],
    argv: Optional[list] = None,
) -> int:
    """Uniform ``__main__`` of a benchmark module.

    Args:
        name: Benchmark name (the ``BENCH_<name>.json`` stem).
        collect: Callable running the measurement and returning the payload
            dictionary; if it accepts a ``max_points`` keyword, the
            ``--max-points`` flag is forwarded.
        argv: Command line (default ``sys.argv[1:]``).
    """
    parser = argparse.ArgumentParser(prog=f"bench_{name}")
    parser.add_argument(
        "--json",
        action="store_true",
        help=f"write BENCH_{name}.json (machine-readable: config, timings, speedups)",
    )
    parser.add_argument(
        "--json-dir",
        default=None,
        help="directory for the JSON document (default: benchmarks/results)",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=None,
        help="truncate parameter sweeps to this many points (quick mode)",
    )
    args = parser.parse_args(argv)
    import inspect

    if "max_points" in inspect.signature(collect).parameters:
        payload = collect(max_points=args.max_points)
    else:
        payload = collect()
    _print_payload(payload)
    if args.json:
        path = write_bench_json(name, payload, args.json_dir)
        print(f"wrote {path}")
    return 0


def sweep_payload(specs, runner, max_points: Optional[int] = None, **kwargs) -> Dict[str, Any]:
    """Shared collector for the figure/table sweep benchmarks.

    Runs ``runner(spec, max_points=..., **kwargs)`` (one of the
    ``repro.eval.runner`` entry points) over every spec and flattens the
    measurement points.  ``timings`` aggregates total wall-clock per
    experiment so trajectory diffs have one headline number per panel.
    """
    points = []
    timings: Dict[str, float] = {}
    spec_ids = []
    for spec in specs:
        spec_id = getattr(spec, "experiment_id", getattr(spec, "scenario_id", ""))
        spec_ids.append(spec_id)
        rows = [point.as_dict() for point in runner(spec, max_points=max_points, **kwargs)]
        points.extend(rows)
        timings[spec_id] = float(
            sum(row.get("elapsed_seconds", 0.0) or 0.0 for row in rows)
        )
    return {
        "config": {"specs": spec_ids, "max_points": max_points},
        "timings": timings,
        "points": points,
    }


if __name__ == "__main__":  # pragma: no cover - helper module
    sys.exit("benchio is a helper; run one of the bench_*.py modules instead")
