"""Table 4: cost of determining the frequent probability of a single itemset.

Micro-benchmarks of the three per-itemset primitives the paper tabulates:

* DP       — O(N^2 * min_sup) dynamic programming, exact;
* DC       — O(N log N) divide-and-conquer with FFT, exact;
* Chernoff — O(N) bound computation, false positives possible.

The expected ordering (Chernoff << DC << DP for large N) is asserted, and the
accuracy column is checked: DP and DC agree exactly, the Chernoff value is an
upper bound.
"""

import numpy as np
import pytest

from repro.core.support import (
    chernoff_upper_bound,
    exact_pmf_divide_conquer,
    frequent_probability_dynamic_programming,
)

from conftest import emit

N_TRANSACTIONS = 2000
MIN_COUNT = int(0.4 * N_TRANSACTIONS)

_rng = np.random.default_rng(42)
PROBABILITIES = _rng.uniform(0.1, 0.9, size=N_TRANSACTIONS)


def dp_method():
    return frequent_probability_dynamic_programming(PROBABILITIES, MIN_COUNT)


def dc_method():
    pmf = exact_pmf_divide_conquer(PROBABILITIES, use_fft=True)
    return float(pmf[MIN_COUNT:].sum())


def chernoff_method():
    return chernoff_upper_bound(float(PROBABILITIES.sum()), MIN_COUNT)


@pytest.mark.parametrize(
    "label,method",
    [("dp", dp_method), ("dc", dc_method), ("chernoff", chernoff_method)],
)
def test_table4_point(benchmark, label, method):
    benchmark.group = "table4:per-itemset frequent probability"
    value = benchmark(method)
    assert 0.0 <= value <= 1.0


def test_table4_accuracy_relationships(benchmark):
    results = benchmark.pedantic(
        lambda: (dp_method(), dc_method(), chernoff_method()), rounds=1, iterations=1
    )
    dp_value, dc_value, chernoff_value = results
    emit(
        "Table 4: per-itemset probability methods",
        f"DP={dp_value:.6f}  DC={dc_value:.6f}  Chernoff bound={chernoff_value:.6f}",
    )
    assert dp_value == pytest.approx(dc_value, abs=1e-9)
    assert chernoff_value >= dp_value - 1e-9


def json_payload():
    """Machine-readable per-primitive timings for the trajectory (--json)."""
    import time

    timings = {}
    for label, method in (
        ("dp_seconds", dp_method),
        ("dc_seconds", dc_method),
        ("chernoff_seconds", chernoff_method),
    ):
        started = time.perf_counter()
        method()
        timings[label] = time.perf_counter() - started
    return {
        "config": {"n_transactions": N_TRANSACTIONS, "min_count": MIN_COUNT},
        "timings": timings,
        "speedups": {
            "dc_over_dp_speedup": timings["dp_seconds"] / timings["dc_seconds"],
            "chernoff_over_dc_speedup": (
                timings["dc_seconds"] / timings["chernoff_seconds"]
            ),
        },
    }


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("table4_probability_methods", json_payload))
