"""Out-of-core store benchmark: dispatch payload, cold/warm mapped mining.

Three claims of the memory-mapped columnar store are measured and pinned:

* **Zero-copy fan-out** — the bytes a shard dispatch ships through the pool
  initializer drop by >= 100x (asserted) when in-RAM shards travel as
  shared-memory descriptors and mapped shards as ``(directory, start,
  stop)`` store sources, instead of whole-view pickles.
* **Mapped mining latency** — a full mine straight off the mapped planes,
  both cold (manifest open + first page faults) and warm (planes mapped,
  caches primed), against the same mine on the in-RAM columnar view, with
  bitwise-identical results (asserted).
* **Out-of-core execution** — with ``--capped`` (or
  ``REPRO_STORE_BENCH_CAP_BYTES`` set), a subprocess locks its data segment
  with ``resource.setrlimit(RLIMIT_DATA)``, builds a store *larger* than
  that cap through the streaming writer, and completes a full mine under
  the cap — possible only because mapped plane pages live in the page
  cache, not the process heap.  The harness proves the cap is enforced
  (a heap allocation of the cap's size must fail) before trusting the run.

Sizing knobs (environment): ``REPRO_STORE_BENCH_ROWS`` (default 150000),
``REPRO_STORE_BENCH_ITEMS`` (default 40), ``REPRO_STORE_BENCH_CAP_ROWS``
(capped-run rows, default 1600000), ``REPRO_STORE_BENCH_CAP_BYTES``
(RLIMIT_DATA of the capped child, default 320 MiB).

Usage::

    PYTHONPATH=src python benchmarks/bench_store_fanout.py [--json] [--capped]
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict

from benchio import REPO_ROOT, bench_main

#: items whose columns are dense enough to stay frequent at MIN_ESUP —
#: keeps the level-wise search at one small pair level regardless of scale
HOT_ITEMS = 6
MIN_ESUP = 0.2

DEFAULT_ROWS = 150_000
DEFAULT_ITEMS = 40
DEFAULT_CAP_ROWS = 1_600_000
DEFAULT_CAP_BYTES = 320 << 20

_CHILD_FLAG = "--capped-child"
_CHILD_MARKER = "CAPPED_RESULT "


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def build_synthetic_store(directory: str, n_rows: int, n_items: int, seed: int = 7):
    """Stream a deterministic synthetic store to disk, one column at a time.

    Peak memory is one column's scratch (~14 bytes/row), independent of the
    final store size — the property the capped run depends on.
    """
    import numpy as np

    from repro.db.store import ColumnarStore

    rng = np.random.default_rng(seed)
    with ColumnarStore.writer(
        directory, n_rows, name=f"synthetic-{n_rows}x{n_items}"
    ) as writer:
        for item in range(n_items):
            density = 0.5 if item < HOT_ITEMS else 0.3
            rows = np.flatnonzero(rng.random(n_rows) < density).astype(np.int64)
            probs = 0.2 + 0.6 * rng.random(rows.size)
            writer.add_column(item, rows, probs)
    return ColumnarStore.open(directory)


def _mine_store(store) -> Any:
    from repro.core.miner import mine

    return mine(store.database(), algorithm="uapriori", min_esup=MIN_ESUP)


def _result_signature(result) -> list:
    return [
        (record.itemset.items, record.expected_support, record.variance)
        for record in result
    ]


def _payload_bytes(shard_views, fanout: str) -> int:
    from repro.core.parallel import ParallelExecutor

    executor = ParallelExecutor(2, shard_views=shard_views, fanout=fanout)
    try:
        return executor.dispatch_payload_nbytes()
    finally:
        executor.close()


def collect() -> Dict[str, Any]:
    import numpy as np

    from repro.db.columnar import ColumnarView
    from repro.db.partition import ColumnarPartition
    from repro.db.store import ColumnarStore
    from repro.db import store as store_module

    n_rows = _env_int("REPRO_STORE_BENCH_ROWS", DEFAULT_ROWS)
    n_items = _env_int("REPRO_STORE_BENCH_ITEMS", DEFAULT_ITEMS)
    n_shards = 4

    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as directory:
        started = time.perf_counter()
        store = build_synthetic_store(directory, n_rows, n_items)
        build_seconds = time.perf_counter() - started

        # In-RAM twin of the mapped data: the payload baseline and the
        # bitwise reference for the mapped mine.
        mapped_view = store.view()
        columns = {
            item: (
                np.asarray(mapped_view.column(item)[0]),
                np.asarray(mapped_view.column(item)[1]),
            )
            for item in mapped_view.items()
        }
        inram_view = ColumnarView.from_columns(columns, n_rows)
        inram_shards = ColumnarPartition(inram_view, n_shards).shards
        mapped_shards = ColumnarPartition(mapped_view, n_shards).shards

        pickle_bytes = _payload_bytes(inram_shards, "pickle")
        shm_bytes = _payload_bytes(inram_shards, "shm")
        mapped_bytes = _payload_bytes(mapped_shards, "auto")
        shm_reduction = pickle_bytes / shm_bytes
        mapped_reduction = pickle_bytes / mapped_bytes
        assert shm_reduction >= 100.0, (
            f"shared-memory dispatch payload only {shm_reduction:.1f}x smaller "
            f"({pickle_bytes} -> {shm_bytes} bytes); contract is >= 100x"
        )
        assert mapped_reduction >= 100.0, (
            f"store-descriptor dispatch payload only {mapped_reduction:.1f}x "
            f"smaller ({pickle_bytes} -> {mapped_bytes} bytes); contract is >= 100x"
        )

        # Cold open: a fresh manifest parse and first-touch page faults.
        store_module._OPEN_STORES.clear()
        started = time.perf_counter()
        cold_result = _mine_store(ColumnarStore.open(directory))
        cold_seconds = time.perf_counter() - started

        # Warm map: same process, planes mapped, caches primed.
        warm_store = ColumnarStore.open(directory)
        _mine_store(warm_store)
        started = time.perf_counter()
        warm_result = _mine_store(warm_store)
        warm_seconds = time.perf_counter() - started

        started = time.perf_counter()
        inram_result = _reference_mine(inram_view)
        inram_seconds = time.perf_counter() - started

        assert _result_signature(cold_result) == _result_signature(inram_result), (
            "mapped mine diverged from in-RAM mine"
        )
        assert _result_signature(warm_result) == _result_signature(inram_result)

        payload: Dict[str, Any] = {
            "config": {
                "n_transactions": n_rows,
                "n_items": n_items,
                "n_shards": n_shards,
                "nnz": store.nnz,
                "store_bytes": store.data_nbytes,
                "manifest_bytes": store.manifest_nbytes,
                "min_esup": MIN_ESUP,
                "n_frequent": len(cold_result),
            },
            "timings": {
                "store_build_seconds": build_seconds,
                "cold_open_mine_seconds": cold_seconds,
                "warm_map_mine_seconds": warm_seconds,
                "inram_mine_seconds": inram_seconds,
            },
            "speedups": {
                "payload_reduction_shm": shm_reduction,
                "payload_reduction_store": mapped_reduction,
            },
            "ratios": {
                "payload_pickle_bytes": pickle_bytes,
                "payload_shm_bytes": shm_bytes,
                "payload_store_bytes": mapped_bytes,
            },
        }

    if "--capped" in _CLI_EXTRAS or os.environ.get("REPRO_STORE_BENCH_CAP_BYTES"):
        payload["capped"] = run_capped_child()
    return payload


def _reference_mine(view) -> Any:
    """Mine an in-RAM view through a minimal view-serving database."""
    from repro.core.miner import mine
    from repro.db import UncertainDatabase

    class _ViewDatabase(UncertainDatabase):
        """In-RAM analogue of StoreDatabase: serves one prebuilt view."""

        def __init__(self, columnar_view):
            self._columnar = columnar_view
            self.vocabulary = None
            self.name = "inram-reference"
            self._partitions = {}

        def __len__(self):
            return len(self._columnar)

        def columnar(self):
            return self._columnar

        def items(self):
            return self._columnar.items()

    return mine(_ViewDatabase(view), algorithm="uapriori", min_esup=MIN_ESUP)


def run_capped_child() -> Dict[str, Any]:
    """Run the out-of-core mine in a child whose data segment is capped."""
    cap_bytes = _env_int("REPRO_STORE_BENCH_CAP_BYTES", DEFAULT_CAP_BYTES)
    cap_rows = _env_int("REPRO_STORE_BENCH_CAP_ROWS", DEFAULT_CAP_ROWS)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (str(REPO_ROOT / "src"), env.get("PYTHONPATH", ""))
        if part
    )
    env["REPRO_STORE_BENCH_CAP_BYTES"] = str(cap_bytes)
    env["REPRO_STORE_BENCH_CAP_ROWS"] = str(cap_rows)
    completed = subprocess.run(
        [sys.executable, os.path.abspath(__file__), _CHILD_FLAG],
        env=env,
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"capped out-of-core child failed (exit {completed.returncode}):\n"
            f"{completed.stdout}\n{completed.stderr}"
        )
    for line in reversed(completed.stdout.splitlines()):
        if line.startswith(_CHILD_MARKER):
            return json.loads(line[len(_CHILD_MARKER) :])
    raise RuntimeError(f"capped child produced no result line:\n{completed.stdout}")


def _capped_child_main() -> int:
    """Child body: cap the data segment *before* the heavy imports, then mine."""
    import resource

    cap_bytes = _env_int("REPRO_STORE_BENCH_CAP_BYTES", DEFAULT_CAP_BYTES)
    cap_rows = _env_int("REPRO_STORE_BENCH_CAP_ROWS", DEFAULT_CAP_ROWS)
    resource.setrlimit(resource.RLIMIT_DATA, (cap_bytes, cap_bytes))

    # Out-of-core discipline: the derived-array caches are heap residents,
    # so a capped run pins them small (recomputation traded for memory).
    os.environ.setdefault("REPRO_DENSE_CACHE_BYTES", str(4 << 20))
    os.environ.setdefault("REPRO_PREFIX_CACHE_BYTES", str(8 << 20))
    os.environ.setdefault("REPRO_BITMAP_CACHE_BYTES", str(4 << 20))
    os.environ.setdefault("REPRO_MAPPED_CACHE_BYTES", str(8 << 20))

    import numpy as np

    # Prove the cap is enforced: a heap allocation of the cap's size must
    # fail (file-backed mappings are exactly what RLIMIT_DATA exempts).
    try:
        scratch = np.ones(cap_bytes // 8, dtype=np.float64)
    except MemoryError:
        scratch = None
    else:
        raise SystemExit("RLIMIT_DATA cap is not enforced on this kernel")
    del scratch

    with tempfile.TemporaryDirectory(prefix="repro-store-capped-") as directory:
        n_items = _env_int("REPRO_STORE_BENCH_ITEMS", DEFAULT_ITEMS)
        started = time.perf_counter()
        store = build_synthetic_store(directory, cap_rows, n_items)
        build_seconds = time.perf_counter() - started
        store_bytes = store.data_nbytes
        if store_bytes <= cap_bytes:
            raise SystemExit(
                f"store ({store_bytes} bytes) does not exceed the RSS cap "
                f"({cap_bytes} bytes); raise REPRO_STORE_BENCH_CAP_ROWS"
            )
        started = time.perf_counter()
        result = _mine_store(store)
        mine_seconds = time.perf_counter() - started
        n_frequent = len(result)
    if n_frequent < HOT_ITEMS:
        raise SystemExit(
            f"capped mine found only {n_frequent} itemsets; expected at "
            f"least the {HOT_ITEMS} hot singletons"
        )
    print(
        _CHILD_MARKER
        + json.dumps(
            {
                "cap_bytes": cap_bytes,
                "n_transactions": cap_rows,
                "store_bytes": store_bytes,
                "store_over_cap": store_bytes / cap_bytes,
                "build_seconds": build_seconds,
                "mine_seconds": mine_seconds,
                "n_frequent": n_frequent,
            }
        )
    )
    return 0


_CLI_EXTRAS: list = []


if __name__ == "__main__":
    if _CHILD_FLAG in sys.argv:
        sys.exit(_capped_child_main())
    _CLI_EXTRAS = [arg for arg in sys.argv[1:] if arg == "--capped"]
    remaining = [arg for arg in sys.argv[1:] if arg != "--capped"]
    sys.exit(bench_main("store_fanout", collect, remaining))
