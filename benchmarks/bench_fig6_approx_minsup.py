"""Figure 6(a-d): approximate probabilistic miners (plus DCB) vs ``min_sup``.

The expected shape: the approximate miners (all O(N) per itemset) beat the
exact DCB reference; the UApriori-based approximations win on the dense
Accident analogue, NDUH-Mine wins on the sparse Kosarak analogue.
"""

import pytest

from repro.core import mine
from repro.eval import figure6_min_sup, run_experiment

from conftest import emit, save_and_render, SCALE

ALGORITHMS = ("dcb", "pdu-apriori", "ndu-apriori", "nduh-mine")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize(
    "dataset_fixture,min_sup", [("accident_db", 0.2), ("kosarak_db", 0.01)]
)
def test_fig6_minsup_point(benchmark, request, algorithm, dataset_fixture, min_sup):
    database = request.getfixturevalue(dataset_fixture)
    benchmark.group = f"fig6-minsup:{database.name}@{min_sup}"
    result = benchmark(
        lambda: mine(database, algorithm=algorithm, min_sup=min_sup, pft=0.9)
    )
    assert len(result) >= 0


@pytest.mark.parametrize("panel_index", range(2))
def test_fig6_minsup_report(benchmark, panel_index):
    spec = figure6_min_sup(SCALE, track_memory=True)[panel_index]
    points = benchmark.pedantic(lambda: run_experiment(spec), rounds=1, iterations=1)
    emit(spec.title, save_and_render(points, spec.experiment_id))
    emit(
        spec.title + " (peak memory bytes)",
        save_and_render(points, f"{spec.experiment_id}_memory", measure="peak_memory_bytes"),
    )
    assert len(points) == len(spec.values) * len(spec.algorithms)


def json_payload(max_points=None):
    """Machine-readable sweep results for the benchmark trajectory (--json)."""
    from benchio import sweep_payload
    from repro.eval import run_experiment

    return sweep_payload(figure6_min_sup(SCALE, track_memory=True), run_experiment, max_points=max_points)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("fig6_approx_minsup", json_payload))
