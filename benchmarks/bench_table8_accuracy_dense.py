"""Table 8: precision/recall of the approximate miners on the dense Accident analogue.

The paper reports precision and recall essentially equal to 1 across the
``min_sup`` grid; small false-positive rates appear only at the lowest
thresholds.
"""

from repro.eval import run_accuracy_experiment, table8_accuracy_dense

from conftest import emit, save_and_render, SCALE


def test_table8_report(benchmark):
    spec = table8_accuracy_dense(SCALE)
    points = benchmark.pedantic(
        lambda: run_accuracy_experiment(spec, reference_algorithm="dcb"),
        rounds=1,
        iterations=1,
    )
    emit(spec.title, save_and_render(points, spec.experiment_id, kind="accuracy"))
    # Recall of the Normal-approximation miners should stay essentially perfect.
    for point in points:
        if point.algorithm in ("ndu-apriori", "nduh-mine"):
            assert point.recall >= 0.9
        assert 0.0 <= point.precision <= 1.0


def json_payload(max_points=None):
    """Machine-readable accuracy sweep for the benchmark trajectory (--json)."""
    from benchio import sweep_payload
    from repro.eval import run_accuracy_experiment

    return sweep_payload(
        [table8_accuracy_dense(SCALE)],
        run_accuracy_experiment,
        max_points=max_points,
        reference_algorithm="dcb",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("table8_accuracy_dense", json_payload))
