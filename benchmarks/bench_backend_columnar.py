"""Micro-benchmark: row vs columnar batched candidate evaluation.

Times the hot path every level-wise miner sits on — evaluating one Apriori
level of candidates over a dense synthetic database — on both backends:

* ``rows``: trim the transactions, then scan every candidate's
  per-transaction probability vector with the historical Python loop;
* ``columnar``: one :meth:`ColumnarView.batch_vectors` call (sparse column
  intersections with shared prefix reuse) plus vectorized reductions.

A full UApriori run is timed on both backends as well.  Results land in
``benchmarks/results/bench_backend_columnar.csv``; the module doubles as a
regression test asserting the columnar batch path stays at least 5x faster
on the N >= 2000 dense database.

Run with ``pytest benchmarks/bench_backend_columnar.py -s`` or directly as
a script.  ``REPRO_SCALE`` scales the transaction count upwards (the
default already satisfies the N >= 2000 dense setting).
"""

from __future__ import annotations

import gc
import os
import random
import time
from typing import Dict, List, Tuple

from repro.algorithms.common import (
    apriori_join,
    frequent_items_by_expected_support,
    itemset_probability_vector,
    trim_transactions,
)
from repro.algorithms.uapriori import UApriori
from repro.core.support import SupportEngine
from repro.db import UncertainDatabase
from repro.eval import reporting

from conftest import RESULTS_DIR, SCALE, emit

#: dense synthetic setting: the acceptance floor is 2000 transactions
N_TRANSACTIONS = max(2000, int(2000 * SCALE / 0.002))
N_ITEMS = 24
DENSITY = 0.5
MIN_ESUP_RATIO = 0.1


def make_dense_database(
    n_transactions: int = N_TRANSACTIONS,
    n_items: int = N_ITEMS,
    density: float = DENSITY,
    seed: int = 0,
) -> UncertainDatabase:
    """A dense uniform-probability database (the paper's dense regime)."""
    rng = random.Random(seed)
    records: List[Dict[int, float]] = []
    for _ in range(n_transactions):
        units = {
            item: round(rng.uniform(0.3, 1.0), 3)
            for item in range(n_items)
            if rng.random() < density
        }
        records.append(units)
    return UncertainDatabase.from_records(records, name="dense-synthetic")


def level2_candidates(database: UncertainDatabase, min_esup: float) -> List[Tuple[int, ...]]:
    frequent = sorted(frequent_items_by_expected_support(database, min_esup))
    return apriori_join([(item,) for item in frequent])


def time_row_level(database: UncertainDatabase, candidates, min_esup: float) -> float:
    # The trimmed projection is a one-time per-mine cost, excluded here just
    # as the columnar timing excludes the one-time ColumnarView build.
    transactions = trim_transactions(database, {item for c in candidates for item in c})
    started = time.perf_counter()
    supports = []
    for candidate in candidates:
        vector = itemset_probability_vector(transactions, candidate)
        supports.append(sum(vector))
    elapsed = time.perf_counter() - started
    assert len(supports) == len(candidates)
    return elapsed


def time_columnar_level(database: UncertainDatabase, candidates, min_esup: float) -> float:
    view = database.columnar()  # warm the cache outside the timed region
    started = time.perf_counter()
    engine = SupportEngine(view.batch_vectors(candidates))
    supports = engine.expected_supports()
    elapsed = time.perf_counter() - started
    assert len(supports) == len(candidates)
    return elapsed


def run_benchmark() -> Dict[str, float]:
    database = make_dense_database()
    min_esup = MIN_ESUP_RATIO * len(database)
    candidates = level2_candidates(database, min_esup)

    # Best of three repetitions with a warm-up pass and the garbage
    # collector quiesced: the ratio is the point of the benchmark, and a GC
    # pause or cold cache inside one sample would misstate it (the columnar
    # region runs in single-digit milliseconds).
    time_columnar_level(database, candidates, min_esup)  # warm dense cache
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        row_seconds = min(
            time_row_level(database, candidates, min_esup) for _ in range(3)
        )
        columnar_seconds = min(
            time_columnar_level(database, candidates, min_esup) for _ in range(3)
        )
    finally:
        if gc_was_enabled:
            gc.enable()

    row_mine = UApriori(backend="rows")
    columnar_mine = UApriori(backend="columnar")
    row_result = row_mine.mine(database, min_esup=MIN_ESUP_RATIO)
    columnar_result = columnar_mine.mine(database, min_esup=MIN_ESUP_RATIO)
    assert columnar_result.itemset_keys() == row_result.itemset_keys()

    return {
        "n_transactions": len(database),
        "n_candidates": len(candidates),
        "row_level_seconds": row_seconds,
        "columnar_level_seconds": columnar_seconds,
        "level_speedup": row_seconds / columnar_seconds,
        "row_mine_seconds": row_result.statistics.elapsed_seconds,
        "columnar_mine_seconds": columnar_result.statistics.elapsed_seconds,
        "mine_speedup": (
            row_result.statistics.elapsed_seconds
            / columnar_result.statistics.elapsed_seconds
        ),
    }


class _Point:
    """Minimal row shim for the shared CSV writer."""

    def __init__(self, payload: Dict[str, float]) -> None:
        self._payload = payload

    def as_dict(self) -> Dict[str, object]:
        return dict(self._payload)


def test_columnar_batched_evaluation_speedup():
    measurements = run_benchmark()
    rows = [{"measure": key, "value": value} for key, value in measurements.items()]
    RESULTS_DIR.mkdir(exist_ok=True)
    reporting.write_csv(
        [_Point(row) for row in rows],
        RESULTS_DIR / "bench_backend_columnar.csv",
    )
    emit(
        "Backend: row vs columnar batched support",
        reporting.format_table(rows, ["measure", "value"]),
    )
    assert measurements["level_speedup"] >= 5.0, measurements


def json_payload():
    """Machine-readable measurements for the benchmark trajectory (--json)."""
    from benchio import split_measurements

    return split_measurements(run_benchmark())


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("backend_columnar", json_payload))
