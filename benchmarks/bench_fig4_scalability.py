"""Figure 4(i-j): scalability of the expected-support miners on T25I15D.

The paper sweeps the Quest dataset from 20k to 320k transactions; the
scaled-down series keeps the same 16x span (200 to 3200 transactions by
default) so the linear-growth shape is reproduced.
"""

import pytest

from repro.core import mine
from repro.eval import figure4_scalability, run_experiment

from conftest import emit, save_and_render

ALGORITHMS = ("uapriori", "uh-mine", "ufp-growth")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig4_scalability_point(benchmark, quest_db, algorithm):
    benchmark.group = "fig4-scalability:t25i15d-800"
    result = benchmark(lambda: mine(quest_db, algorithm=algorithm, min_esup=0.1))
    assert len(result) >= 0


def test_fig4_scalability_report(benchmark):
    spec = figure4_scalability()
    points = benchmark.pedantic(lambda: run_experiment(spec), rounds=1, iterations=1)
    emit(spec.title, save_and_render(points, spec.experiment_id))
    # Running time must grow with the number of transactions (linear trend).
    for algorithm in ALGORITHMS:
        series = sorted(
            (point.value, point.elapsed_seconds)
            for point in points
            if point.algorithm == algorithm
        )
        assert series[-1][1] >= series[0][1]


def json_payload(max_points=None):
    """Machine-readable sweep results for the benchmark trajectory (--json)."""
    from benchio import sweep_payload
    from repro.eval import run_experiment

    return sweep_payload([figure4_scalability()], run_experiment, max_points=max_points)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("fig4_scalability", json_payload))
