"""Top-k ranked mining: threshold-raising pruning vs mine-then-truncate.

The top-k subsystem claims that when ``k << |F|`` the dynamically raised
support floor (the running k-th best score) prunes the level-wise search
far below what any fixed threshold can: the searcher only descends into
subtrees whose anti-monotone bound still beats the current k-th best,
while a mine-then-truncate consumer has to pick a threshold generous
enough to be sure of covering the top k — and then pays for the entire
frequent set above it.

This benchmark measures that claim on the paper's dense regime (the same
``N >= 2000``, 24-item synthetic database as the backend and streaming
benchmarks), at ``k = 10``, under both rankings:

* ``esup`` — Definition 2 ordering; the truncate baseline is a full
  UApriori run at ``min_esup = 0.05`` (|F| ~ 300 itemsets, so k << |F|);
* ``dp`` — Definition 4 ordering at ``min_sup = 0.125``; the truncate
  baseline is a full DPB run at ``pft = 1e-4`` (|F| >> k again).

Every run is verified before any timing is reported: the top-k result must
equal the baseline's truncation exactly (ranked itemsets *and* scores),
and the k-th best score must clear the baseline's threshold — the coverage
condition under which truncating the threshold mine provably equals
threshold-free top-k.

Measured quantities land in ``benchmarks/results/bench_topk.csv``:
``{algo}_topk_seconds``, ``{algo}_truncate_seconds`` and
``{algo}_speedup``.  The acceptance floor is a >= 3x speedup for both
rankings (relax with ``REPRO_BENCH_REQUIRE_SPEEDUP=0`` on noisy shared
runners; equivalence is asserted unconditionally).

Run with ``pytest benchmarks/bench_topk.py -s`` or directly as a script.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

from repro.core.miner import mine
from repro.core.topk import mine_topk, truncate_result
from repro.eval import reporting

from bench_backend_columnar import make_dense_database
from conftest import RESULTS_DIR, emit

#: dense regime: the acceptance floor is 2000 transactions
N_TRANSACTIONS = max(2000, int(os.environ.get("REPRO_TOPK_LENGTH", "2000")))
#: how many itemsets the ranked workload asks for
K = int(os.environ.get("REPRO_TOPK_K", "10"))

#: top-k with the raised floor must beat mine-then-truncate by this factor
SPEEDUP_FLOOR = 3.0

#: set REPRO_BENCH_REQUIRE_SPEEDUP=0 to report timings without gating on
#: them (equivalence is always asserted regardless)
REQUIRE_SPEEDUP = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP", "1").strip() != "0"

#: per-ranking workload: the top-k evaluator plus the threshold the
#: truncate baseline mines at (generous enough that k << |F| while still
#: provably covering the top k — asserted at run time)
WORKLOADS = {
    "esup": {
        "algorithm": "uapriori",
        "topk_kwargs": {},
        "baseline_kwargs": {"min_esup": 0.05},
        "ranking": "esup",
    },
    "dp": {
        "algorithm": "dpb",
        "topk_kwargs": {"min_sup": 0.125},
        "baseline_kwargs": {"min_sup": 0.125, "pft": 1e-4},
        "ranking": "probability",
    },
}


def run_benchmark() -> Dict[str, float]:
    database = make_dense_database(n_transactions=N_TRANSACTIONS)
    database.columnar()  # shared one-time view build, excluded from both sides
    measurements: Dict[str, float] = {
        "n_transactions": float(len(database)),
        "k": float(K),
    }

    for label, workload in WORKLOADS.items():
        algorithm = workload["algorithm"]

        started = time.perf_counter()
        topk = mine_topk(database, K, algorithm=algorithm, **workload["topk_kwargs"])
        topk_seconds = time.perf_counter() - started

        started = time.perf_counter()
        full = mine(database, algorithm=algorithm, **workload["baseline_kwargs"])
        truncated = truncate_result(full, K, workload["ranking"])
        truncate_seconds = time.perf_counter() - started

        # Coverage: with the k-th best score above the baseline's threshold,
        # truncating the threshold mine provably equals threshold-free top-k
        # — only then is the equality check (and the timing) meaningful.
        kth_score = min(topk.scores())
        if workload["ranking"] == "esup":
            threshold = workload["baseline_kwargs"]["min_esup"] * len(database)
        else:
            threshold = workload["baseline_kwargs"]["pft"]
        assert kth_score > threshold, (
            f"{label}: k-th best score {kth_score} does not clear the baseline "
            f"threshold {threshold}; the truncate baseline is not a valid oracle"
        )
        assert len(full) >= 10 * K, (
            f"{label}: |F| = {len(full)} is not >> k = {K}; "
            "the workload does not exercise the pruning regime"
        )
        assert topk.ranked_keys() == truncated.ranked_keys(), (
            f"top-k {label} diverged from mine-then-truncate: "
            f"{topk.ranked_keys()} vs {truncated.ranked_keys()}"
        )

        measurements[f"{label}_full_itemsets"] = float(len(full))
        measurements[f"{label}_topk_seconds"] = topk_seconds
        measurements[f"{label}_truncate_seconds"] = truncate_seconds
        measurements[f"{label}_speedup"] = (
            truncate_seconds / topk_seconds if topk_seconds > 0 else float("inf")
        )

    return measurements


class _Point:
    """Minimal row shim for the shared CSV writer."""

    def __init__(self, payload: Dict[str, float]) -> None:
        self._payload = payload

    def as_dict(self) -> Dict[str, object]:
        return dict(self._payload)


def _report(measurements: Dict[str, float]) -> None:
    rows: List[Dict[str, float]] = [
        {"measure": key, "value": value} for key, value in measurements.items()
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    reporting.write_csv(
        [_Point(row) for row in rows], RESULTS_DIR / "bench_topk.csv"
    )
    emit(
        "Top-k ranked mining (threshold-raising pruning vs mine-then-truncate)",
        reporting.format_table(rows, ["measure", "value"]),
    )


def _assert_speedup(measurements: Dict[str, float]) -> None:
    if not REQUIRE_SPEEDUP:
        print("(speedup assertion disabled via REPRO_BENCH_REQUIRE_SPEEDUP=0)")
        return
    for label in WORKLOADS:
        speedup = measurements[f"{label}_speedup"]
        assert speedup >= SPEEDUP_FLOOR, (
            f"top-k {label} only {speedup:.2f}x faster than mine-then-truncate "
            f"at k={K} (floor {SPEEDUP_FLOOR}x): {measurements}"
        )


def test_topk_speedup():
    measurements = run_benchmark()
    _report(measurements)
    _assert_speedup(measurements)


def json_payload():
    """Machine-readable measurements for the benchmark trajectory (--json).

    Keeps the direct-run behaviour of the historical ``__main__``: the
    human-readable report is printed and the speedup floor asserted
    (``REPRO_BENCH_REQUIRE_SPEEDUP=0`` disables the floor, as before).
    """
    from benchio import split_measurements

    measurements = run_benchmark()
    _report(measurements)
    _assert_speedup(measurements)
    return split_measurements(measurements)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("topk", json_payload))
