"""Micro-benchmark: the bitset evaluation cascade vs the recursive columnar path.

Times the hot path of every level-wise miner — evaluating whole Apriori
levels of candidates over a dense ``N >= 2000`` synthetic database — on the
two columnar evaluation paths:

* ``bitset off``: the historical recursion (every candidate's column is
  built by per-call prefix memoisation, counts and moments derived from the
  float vectors afterwards);
* ``bitset on``: the three-stage cascade — packed-bitmap AND + popcount
  kills count-starved candidates before any float work, survivors resolve
  their ``k - 1``-prefixes through the cross-level LRU and pay a single
  gather-and-multiply.

Each timed repetition evaluates level 2 *and* level 3 on a fresh
:class:`~repro.db.columnar.ColumnarView` (bitmap construction and cache
fills are inside the timed region, exactly as a real mine pays them), and
the survivor vectors are asserted bitwise identical between the two paths.
A registered-miner equivalence grid — every algorithm, rows oracle vs both
columnar paths, across (workers, shards) configurations — guards the
cascade's exactness, and a crossover sweep documents the measured
:data:`~repro.db.columnar.DENSE_CROSSOVER_FRACTION` constant.

The module doubles as a regression test asserting the cascade stays at
least 3x faster on the dense instance (``REPRO_BENCH_REQUIRE_SPEEDUP=0``
disables the floor for noisy shared runners; the equivalence assertions
always run).  Results land in ``benchmarks/results/bench_bitset_cascade.csv``
and, with ``--json``, in ``BENCH_bitset_cascade.json``.
"""

from __future__ import annotations

import gc
import os
import random
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.algorithms.common import apriori_join, has_infrequent_subset
from repro.core.miner import mine
from repro.core.registry import algorithm_names, get_algorithm
from repro.core.support import SupportEngine
from repro.db import UncertainDatabase
from repro.db.columnar import ColumnarView
from repro.eval import reporting

from conftest import RESULTS_DIR, SCALE, emit

#: dense synthetic setting: the acceptance floor is 2000 transactions
N_TRANSACTIONS = int(
    os.environ.get("REPRO_BITSET_BENCH_N", max(2000, int(2000 * SCALE / 0.002)))
)
N_ITEMS = 24
#: per-item densities span the crossover band so the kill stage sees a
#: realistic mix of doomed and surviving candidates
DENSITY_RANGE = (0.15, 0.65)
#: absolute support level of the kill stage (Definition 4 style)
MIN_COUNT_RATIO = 0.25


def make_dense_database(
    n_transactions: int = N_TRANSACTIONS,
    n_items: int = N_ITEMS,
    seed: int = 0,
) -> UncertainDatabase:
    """A dense mixed-density database (the paper's dense regime)."""
    rng = random.Random(seed)
    densities = [rng.uniform(*DENSITY_RANGE) for _ in range(n_items)]
    records: List[Dict[int, float]] = []
    for _ in range(n_transactions):
        units = {
            item: round(rng.uniform(0.3, 1.0), 3)
            for item in range(n_items)
            if rng.random() < densities[item]
        }
        records.append(units)
    return UncertainDatabase.from_records(records, name="dense-bitset")


def candidate_levels(
    database: UncertainDatabase, min_count: int
) -> Tuple[List[Tuple[int, ...]], List[Tuple[int, ...]]]:
    """The level-2 and level-3 candidate sets a DP-style mine would evaluate."""
    view = database.columnar()
    items = [(item,) for item in view.items()]
    level2 = apriori_join(items)
    counts = view.level_occupancy_counts(level2)
    frequent2 = [
        candidate
        for candidate, count in zip(level2, counts)
        if count >= min_count
    ]
    keys = set(frequent2)
    level3 = [
        candidate
        for candidate in apriori_join(sorted(frequent2))
        if not has_infrequent_subset(candidate, keys)
    ]
    return level2, level3


def _evaluate_esup_baseline(view: ColumnarView, levels, min_count: int) -> List[int]:
    """Pre-cascade expected-support level (UApriori shape): vectors + esup."""
    survivors_per_level = []
    for candidates in levels:
        engine = SupportEngine(view.batch_vectors(candidates, bitset="off"))
        expected = engine.expected_supports()
        survivors_per_level.append(
            sum(1 for value in expected if value >= min_count)
        )
    return survivors_per_level


def _evaluate_esup_cascade(view: ColumnarView, levels, min_count: int) -> List[int]:
    """Cascade expected-support level: bitmap kill, floats for survivors only."""
    survivors_per_level = []
    for candidates in levels:
        engine = SupportEngine(
            view.batch_vectors(candidates, min_count=min_count, bitset="on")
        )
        expected = engine.expected_supports()
        survivors_per_level.append(
            sum(1 for value in expected if value >= min_count)
        )
    return survivors_per_level


def _evaluate_dp_baseline(view: ColumnarView, levels, min_count: int) -> List[int]:
    """Pre-cascade probabilistic level (DP/DC shape): vectors, moments, counts."""
    survivors_per_level = []
    for candidates in levels:
        engine = SupportEngine(view.batch_vectors(candidates, bitset="off"))
        counts = engine.nonzero_counts()
        expected = engine.expected_supports()
        variances = engine.variances()
        alive = [i for i in range(len(candidates)) if counts[i] >= min_count]
        assert len(expected) == len(variances) == len(candidates)
        survivors_per_level.append(len(alive))
    return survivors_per_level


def _evaluate_dp_cascade(view: ColumnarView, levels, min_count: int) -> List[int]:
    """Cascade probabilistic level: kill first, moments over survivors only."""
    survivors_per_level = []
    for candidates in levels:
        engine = SupportEngine(
            view.batch_vectors(candidates, min_count=min_count, bitset="on")
        )
        counts = engine.nonzero_counts()
        expected = engine.expected_supports()
        variances = engine.variances()
        alive = [i for i in range(len(candidates)) if counts[i] >= min_count]
        assert len(expected) == len(variances) == len(candidates)
        survivors_per_level.append(len(alive))
    return survivors_per_level


def _time_fresh_view(database: UncertainDatabase, evaluate, levels, min_count, repeats=5):
    """Best-of-N timing on a cold view per repetition (cache fills included)."""
    best = float("inf")
    for _ in range(repeats):
        view = ColumnarView(database)  # cold caches: bitmaps/prefixes are paid inside
        gc.collect()
        started = time.perf_counter()
        evaluate(view, levels, min_count)
        best = min(best, time.perf_counter() - started)
    return best


def _assert_bitwise_equal_vectors(database: UncertainDatabase, levels, min_count):
    """Survivor vectors must be bitwise identical between the two paths."""
    view = database.columnar()
    for candidates in levels:
        baseline = view.batch_vectors(candidates, bitset="off")
        cascade = view.batch_vectors(candidates, min_count=min_count, bitset="on")
        counts = view.level_occupancy_counts(candidates)
        for vector_off, vector_on, count in zip(baseline, cascade, counts):
            if count >= min_count:
                assert np.array_equal(vector_off, vector_on)
            else:
                assert len(vector_on) == 0


def crossover_sweep(database: UncertainDatabase) -> List[Dict[str, float]]:
    """Measure sparse-merge vs dense-product time across occupancy fractions.

    The sweep behind :data:`repro.db.columnar.DENSE_CROSSOVER_FRACTION`:
    for pairs of synthetic columns whose combined occupancy spans 5%-60% of
    ``N``, both intersection kernels are timed directly.  The documented
    constant (0.25) sits inside the measured indifference band.
    """
    n = len(database)
    rng = np.random.default_rng(7)
    rows_all = np.arange(n, dtype=np.int64)
    points = []
    for fraction in (0.05, 0.1, 0.2, 0.25, 0.3, 0.45, 0.6):
        occupancy = max(2, int(n * fraction / 2))
        rows_a = np.sort(rng.choice(rows_all, size=occupancy, replace=False))
        rows_b = np.sort(rng.choice(rows_all, size=occupancy, replace=False))
        probs_a = rng.uniform(0.3, 1.0, size=occupancy)
        probs_b = rng.uniform(0.3, 1.0, size=occupancy)
        repeats = 50

        started = time.perf_counter()
        for _ in range(repeats):
            positions = np.searchsorted(rows_b, rows_a)
            positions[positions == len(rows_b)] = 0
            mask = rows_b[positions] == rows_a
            rows_a[mask], probs_a[mask] * probs_b[positions[mask]]
        sparse_seconds = (time.perf_counter() - started) / repeats

        dense_b = np.zeros(n)
        dense_b[rows_b] = probs_b
        started = time.perf_counter()
        for _ in range(repeats):
            dense_a = np.zeros(n)
            dense_a[rows_a] = probs_a
            product = dense_a * dense_b
            out_rows = np.nonzero(product)[0]
            product[out_rows]
        dense_seconds = (time.perf_counter() - started) / repeats

        points.append(
            {
                "occupancy_fraction": 2 * occupancy / n,
                "sparse_seconds": sparse_seconds,
                "dense_seconds": dense_seconds,
                "dense_over_sparse": dense_seconds / sparse_seconds,
            }
        )
    return points


def equivalence_grid() -> int:
    """Every registered miner, rows oracle vs both columnar paths, sharded too.

    Returns the number of (miner, configuration) cells checked; raises on
    any divergence — frequent sets must match exactly, scores must match
    the rows oracle to 1e-9 and the bitset-off columnar run bitwise.
    """
    rng = random.Random(13)
    records = [
        {
            item: round(rng.uniform(0.2, 1.0), 3)
            for item in range(8)
            if rng.random() < 0.45
        }
        for _ in range(120)
    ]
    database = UncertainDatabase.from_records(records, name="equivalence-grid")
    cells = 0
    for name in algorithm_names():
        family = get_algorithm(name).family
        thresholds = (
            {"min_esup": 0.2} if family == "expected" else {"min_sup": 0.3, "pft": 0.7}
        )
        oracle = mine(database, algorithm=name, backend="rows", **thresholds)
        for workers, shards in ((1, 1), (1, 3), (2, 2)):
            kwargs = dict(thresholds, workers=workers, shards=shards)
            with_bitset = mine(database, algorithm=name, backend="columnar", **kwargs)
            os.environ["REPRO_BITSET"] = "off"
            try:
                without = mine(database, algorithm=name, backend="columnar", **kwargs)
            finally:
                os.environ.pop("REPRO_BITSET", None)
            assert with_bitset.itemset_keys() == oracle.itemset_keys(), (name, workers, shards)
            assert without.itemset_keys() == oracle.itemset_keys(), (name, workers, shards)
            for record in with_bitset:
                twin = without[record.itemset]
                assert record.expected_support == twin.expected_support, (name, record)
                assert record.frequent_probability == twin.frequent_probability, (
                    name,
                    record,
                )
                reference = oracle[record.itemset]
                assert abs(record.expected_support - reference.expected_support) < 1e-9
                if (
                    record.frequent_probability is not None
                    and reference.frequent_probability is not None
                ):
                    assert (
                        abs(record.frequent_probability - reference.frequent_probability)
                        < 1e-9
                    )
            cells += 1
    return cells


def run_benchmark() -> Dict[str, float]:
    database = make_dense_database()
    min_count = int(MIN_COUNT_RATIO * len(database))
    level2, level3 = candidate_levels(database, min_count)
    levels = [level2, level3]
    _assert_bitwise_equal_vectors(database, levels, min_count)

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        baseline_seconds = _time_fresh_view(
            database, _evaluate_esup_baseline, levels, min_count
        )
        cascade_seconds = _time_fresh_view(
            database, _evaluate_esup_cascade, levels, min_count
        )
        dp_baseline_seconds = _time_fresh_view(
            database, _evaluate_dp_baseline, levels, min_count
        )
        dp_cascade_seconds = _time_fresh_view(
            database, _evaluate_dp_cascade, levels, min_count
        )
    finally:
        if gc_was_enabled:
            gc.enable()

    mine_kwargs = dict(min_sup=MIN_COUNT_RATIO, pft=0.7)
    started = time.perf_counter()
    with_bitset = mine(database, algorithm="dpb", **mine_kwargs)
    mine_on_seconds = time.perf_counter() - started
    os.environ["REPRO_BITSET"] = "off"
    try:
        started = time.perf_counter()
        without_bitset = mine(database, algorithm="dpb", **mine_kwargs)
        mine_off_seconds = time.perf_counter() - started
    finally:
        os.environ.pop("REPRO_BITSET", None)
    assert with_bitset.itemset_keys() == without_bitset.itemset_keys()

    counts = database.columnar().level_occupancy_counts(level2)
    killed_fraction = float((counts < min_count).mean()) if len(level2) else 0.0

    return {
        "n_transactions": len(database),
        "n_level2_candidates": len(level2),
        "n_level3_candidates": len(level3),
        "min_count": min_count,
        "level2_killed_fraction": killed_fraction,
        "baseline_level_seconds": baseline_seconds,
        "cascade_level_seconds": cascade_seconds,
        "level_speedup": baseline_seconds / cascade_seconds,
        "dp_baseline_level_seconds": dp_baseline_seconds,
        "dp_cascade_level_seconds": dp_cascade_seconds,
        "dp_level_speedup": dp_baseline_seconds / dp_cascade_seconds,
        "mine_off_seconds": mine_off_seconds,
        "mine_on_seconds": mine_on_seconds,
        "mine_speedup": mine_off_seconds / mine_on_seconds,
    }


def json_payload() -> Dict[str, object]:
    """Measure, verify and serialize — the one-shot CI/perf-smoke entry point.

    Runs the timing sweeps (which assert bitwise survivor equivalence), the
    registered-miner equivalence grid, and the crossover sweep; the ≥3x
    level-evaluation floor is asserted here too
    (``REPRO_BENCH_REQUIRE_SPEEDUP=0`` disables it, as everywhere else), so
    one ``--json`` invocation is a complete perf-smoke.
    """
    measurements = run_benchmark()
    if _require_speedup():
        assert measurements["level_speedup"] >= 3.0, measurements
    cells = equivalence_grid()
    crossover = crossover_sweep(make_dense_database())
    return {
        "config": {
            "n_transactions": measurements["n_transactions"],
            "n_items": N_ITEMS,
            "density_range": list(DENSITY_RANGE),
            "min_count": measurements["min_count"],
            "n_level2_candidates": measurements["n_level2_candidates"],
            "n_level3_candidates": measurements["n_level3_candidates"],
            "level2_killed_fraction": measurements["level2_killed_fraction"],
            "equivalence_cells": cells,
        },
        "timings": {
            "baseline_level_seconds": measurements["baseline_level_seconds"],
            "cascade_level_seconds": measurements["cascade_level_seconds"],
            "dp_baseline_level_seconds": measurements["dp_baseline_level_seconds"],
            "dp_cascade_level_seconds": measurements["dp_cascade_level_seconds"],
            "mine_off_seconds": measurements["mine_off_seconds"],
            "mine_on_seconds": measurements["mine_on_seconds"],
        },
        "speedups": {
            "level_speedup": measurements["level_speedup"],
            "dp_level_speedup": measurements["dp_level_speedup"],
            "mine_speedup": measurements["mine_speedup"],
        },
        "crossover_sweep": crossover,
    }


class _Point:
    """Minimal row shim for the shared CSV writer."""

    def __init__(self, payload: Dict[str, float]) -> None:
        self._payload = payload

    def as_dict(self) -> Dict[str, object]:
        return dict(self._payload)


def _require_speedup() -> bool:
    return os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP", "1") != "0"


def test_bitset_cascade_speedup():
    measurements = run_benchmark()
    rows = [{"measure": key, "value": value} for key, value in measurements.items()]
    RESULTS_DIR.mkdir(exist_ok=True)
    reporting.write_csv(
        [_Point(row) for row in rows], RESULTS_DIR / "bench_bitset_cascade.csv"
    )
    emit(
        "Bitset cascade: level evaluation vs recursive columnar",
        reporting.format_table(rows, ["measure", "value"]),
    )
    if _require_speedup():
        assert measurements["level_speedup"] >= 3.0, measurements


def test_bitset_cascade_equivalence_grid():
    assert equivalence_grid() > 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("bitset_cascade", json_payload))
