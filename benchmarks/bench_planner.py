"""Planner benchmark: ``--plan auto`` vs static configurations.

Mines three dataset shapes (small/dense, medium, wide/sparse) once under
the cost-model planner (``plan="auto"``) and once under each member of a
static configuration grid, then compares wall-clocks:

* ``auto_vs_best_static`` — how close the planner gets to the best static
  configuration *for that shape* (>= 1.0 means auto matched or beat it);
* ``auto_vs_worst_static`` — how much the planner saves over the worst
  static configuration (the cost of picking one global default and being
  wrong on some shape).

Asserted contracts (the acceptance bar of the planner PR):

* auto is within 0.9x of the best static configuration on at least one
  shape, and at least 1.2x faster than the worst static one there;
* auto never collapses: on *every* shape auto stays within 0.5x of best
  (a planner that misfires badly anywhere fails the bench);
* the auto-planned mine is **bitwise identical** to a mine with the same
  resolved plan passed explicitly — the planner only picks knobs, it
  never changes results.

Usage::

    PYTHONPATH=src python benchmarks/bench_planner.py [--json]
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Tuple

from benchio import bench_main

#: (shape label, database construction parameters, min_sup engaging level-2+ work)
SHAPES: List[Tuple[str, Dict[str, Any], float]] = [
    (
        "dense_small",
        {"n_transactions": 800, "n_items": 24, "density": 0.5, "seed": 5},
        0.15,
    ),
    (
        "medium",
        {"n_transactions": 4000, "n_items": 36, "density": 0.2, "seed": 7},
        0.04,
    ),
    (
        "wide_sparse",
        {"n_transactions": 2000, "n_items": 120, "density": 0.05, "seed": 9},
        0.01,
    ),
]

#: the static grid auto competes against — one fixed configuration applied
#: to every shape, the way a hand-tuned deployment would pin its knobs
STATIC_PLANS: Dict[str, Dict[str, Any]] = {
    "columnar_w1": {"backend": "columnar", "bitset": True, "workers": 1, "shards": 1},
    "columnar_nobitset": {
        "backend": "columnar",
        "bitset": False,
        "workers": 1,
        "shards": 1,
    },
    "rows_w1": {"backend": "rows", "workers": 1, "shards": 1},
}

PFT = 0.9
ALGORITHM = "dcb"
REPEATS = 2


def _build_database(label: str, n_transactions: int, n_items: int, density: float, seed: int):
    from repro.db import UncertainDatabase

    rng = random.Random(seed)
    records: List[Dict[int, float]] = []
    for _ in range(n_transactions):
        units: Dict[int, float] = {}
        for item in range(n_items):
            if rng.random() < density:
                units[item] = round(rng.uniform(0.2, 0.98), 3)
        records.append(units)
    return UncertainDatabase.from_records(records, name=f"planner-{label}")


def _mine_once(database, min_sup, plan) -> Tuple[float, Any]:
    from repro.core.miner import mine

    started = time.perf_counter()
    result = mine(database, algorithm=ALGORITHM, min_sup=min_sup, pft=PFT, plan=plan)
    return time.perf_counter() - started, result


def _best_of(database, min_sup, plan) -> Tuple[float, Any]:
    best_seconds, result = _mine_once(database, min_sup, plan)
    for _ in range(REPEATS - 1):
        seconds, result = _mine_once(database, min_sup, plan)
        best_seconds = min(best_seconds, seconds)
    return best_seconds, result


def _record_key(record) -> Tuple[Any, ...]:
    return (
        tuple(record.itemset.items),
        record.expected_support,
        record.variance,
        record.frequent_probability,
    )


def json_payload() -> Dict[str, Any]:
    from repro.plan import materialize_plan

    timings: Dict[str, float] = {}
    speedups: Dict[str, float] = {}
    config: Dict[str, Any] = {
        "algorithm": ALGORITHM,
        "pft": PFT,
        "static_plans": {name: dict(spec) for name, spec in STATIC_PLANS.items()},
        "shapes": {
            label: dict(kwargs, min_sup=min_sup) for label, kwargs, min_sup in SHAPES
        },
        "auto_plans": {},
    }

    hit_bounds = False
    for label, kwargs, min_sup in SHAPES:
        database = _build_database(label, **kwargs)
        # The planner's resolved choice, pinned up front so the bitwise
        # check below re-mines under the *identical* concrete plan.
        resolved = materialize_plan("auto", database)
        config["auto_plans"][label] = resolved.to_dict()

        auto_seconds, auto_result = _best_of(database, min_sup, "auto")
        timings[f"{label}_auto_seconds"] = auto_seconds

        static_seconds: Dict[str, float] = {}
        for name, spec in STATIC_PLANS.items():
            seconds, static_result = _best_of(database, min_sup, dict(spec))
            static_seconds[name] = seconds
            timings[f"{label}_{name}_seconds"] = seconds
            assert {r.itemset.items for r in static_result.itemsets} == {
                r.itemset.items for r in auto_result.itemsets
            }, f"static plan {name} changed the {label} frequent set"

        best = min(static_seconds.values())
        worst = max(static_seconds.values())
        vs_best = best / auto_seconds
        vs_worst = worst / auto_seconds
        speedups[f"{label}_auto_vs_best_static_speedup"] = vs_best
        speedups[f"{label}_auto_vs_worst_static_speedup"] = vs_worst
        if vs_best >= 0.9 and vs_worst >= 1.2:
            hit_bounds = True
        assert vs_best >= 0.5, (
            f"auto misfired on {label}: {auto_seconds:.4f}s vs best static {best:.4f}s"
        )

        # Bitwise contract: the auto-planned mine equals a mine under the
        # same plan set by hand, record for record, bit for bit.
        _, explicit_result = _mine_once(database, min_sup, resolved.to_dict())
        auto_keys = [_record_key(r) for r in auto_result.itemsets]
        explicit_keys = [_record_key(r) for r in explicit_result.itemsets]
        assert auto_keys == explicit_keys, (
            f"auto-planned mine of {label} is not bitwise-equal to the same "
            "plan passed explicitly"
        )

    assert hit_bounds, (
        "auto reached neither >=0.9x best-static nor >=1.2x worst-static on "
        f"any shape; speedups: {speedups}"
    )
    return {"config": config, "timings": timings, "speedups": speedups}


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(bench_main("planner", json_payload))
