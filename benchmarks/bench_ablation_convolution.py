"""Ablation: FFT vs direct convolution inside the DC miner.

DESIGN.md calls out the FFT acceleration as the design choice that gives DC
its O(N log N) edge; this benchmark quantifies it both at the primitive level
(single PMF computation) and end-to-end (full DCB run).
"""

import numpy as np
import pytest

from repro.algorithms import DCMiner
from repro.core.support import exact_pmf_divide_conquer

from conftest import emit

_rng = np.random.default_rng(11)
VECTOR = _rng.uniform(0.05, 0.95, size=4000)


@pytest.mark.parametrize("use_fft", [True, False], ids=["fft", "direct"])
def test_ablation_pmf_convolution(benchmark, use_fft):
    benchmark.group = "ablation:pmf-convolution(N=4000)"
    pmf = benchmark(lambda: exact_pmf_divide_conquer(VECTOR, use_fft=use_fft))
    assert pmf.sum() == pytest.approx(1.0)


@pytest.mark.parametrize("use_fft", [True, False], ids=["fft", "direct"])
def test_ablation_dc_miner_end_to_end(benchmark, accident_db, use_fft):
    benchmark.group = "ablation:dcb-end-to-end(accident)"
    miner = DCMiner(use_pruning=True, use_fft=use_fft)
    result = benchmark.pedantic(
        lambda: miner.mine(accident_db, min_sup=0.2, pft=0.9), rounds=1, iterations=1
    )
    assert len(result) >= 0


def test_ablation_report(benchmark):
    import time

    def measure():
        rows = {}
        for use_fft in (True, False):
            start = time.perf_counter()
            exact_pmf_divide_conquer(VECTOR, use_fft=use_fft)
            rows["fft" if use_fft else "direct"] = time.perf_counter() - start
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "Ablation: convolution strategy for the exact support PMF (N=4000)",
        "\n".join(f"{label:7s} {seconds:.4f}s" for label, seconds in rows.items()),
    )
    assert rows["fft"] <= rows["direct"] * 1.5


def json_payload():
    """Machine-readable FFT-vs-direct timings for the trajectory (--json)."""
    import time

    timings = {}
    for use_fft in (True, False):
        started = time.perf_counter()
        exact_pmf_divide_conquer(VECTOR, use_fft=use_fft)
        label = "fft_seconds" if use_fft else "direct_seconds"
        timings[label] = time.perf_counter() - started
    return {
        "config": {"n_transactions": len(VECTOR)},
        "timings": timings,
        "speedups": {
            "fft_speedup": timings["direct_seconds"] / timings["fft_seconds"]
        },
    }


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("ablation_convolution", json_payload))
