"""Ablation: FFT vs direct convolution inside the DC miner.

DESIGN.md calls out the FFT acceleration as the design choice that gives DC
its O(N log N) edge; this benchmark quantifies it both at the primitive level
(single PMF computation) and end-to-end (full DCB run).
"""

import numpy as np
import pytest

from repro.algorithms import DCMiner
from repro.core.support import exact_pmf_divide_conquer

from conftest import emit

_rng = np.random.default_rng(11)
VECTOR = _rng.uniform(0.05, 0.95, size=4000)


@pytest.mark.parametrize("use_fft", [True, False], ids=["fft", "direct"])
def test_ablation_pmf_convolution(benchmark, use_fft):
    benchmark.group = "ablation:pmf-convolution(N=4000)"
    pmf = benchmark(lambda: exact_pmf_divide_conquer(VECTOR, use_fft=use_fft))
    assert pmf.sum() == pytest.approx(1.0)


@pytest.mark.parametrize("use_fft", [True, False], ids=["fft", "direct"])
def test_ablation_dc_miner_end_to_end(benchmark, accident_db, use_fft):
    benchmark.group = "ablation:dcb-end-to-end(accident)"
    miner = DCMiner(use_pruning=True, use_fft=use_fft)
    result = benchmark.pedantic(
        lambda: miner.mine(accident_db, min_sup=0.2, pft=0.9), rounds=1, iterations=1
    )
    assert len(result) >= 0


def test_ablation_report(benchmark):
    import time

    def measure():
        rows = {}
        for use_fft in (True, False):
            start = time.perf_counter()
            exact_pmf_divide_conquer(VECTOR, use_fft=use_fft)
            rows["fft" if use_fft else "direct"] = time.perf_counter() - start
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "Ablation: convolution strategy for the exact support PMF (N=4000)",
        "\n".join(f"{label:7s} {seconds:.4f}s" for label, seconds in rows.items()),
    )
    assert rows["fft"] <= rows["direct"] * 1.5


#: direct-vs-FFT cutover spans swept by --json (the ``conv_span`` plan knob)
SPANS = (64, 128, 256, 512, 1024)


def json_payload():
    """Machine-readable FFT-vs-direct span sweep for the trajectory (--json).

    Sweeps the ``conv_span`` cutover (operands longer than the span go
    through the FFT) and reports the per-span timings plus the measured
    best span, supporting the planner's default.  The headline
    ``fft_speedup`` is measured *at the resolved default span*, so a
    default the measurements do not support (speedup < 1, the old span-64
    regression) shows up directly in the trajectory.
    """
    import time

    from repro.core.support import resolve_conv_span

    def best_of(run, repeats=3):
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            run()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best

    timings = {
        "direct_seconds": best_of(
            lambda: exact_pmf_divide_conquer(VECTOR, use_fft=False)
        )
    }
    speedups = {}
    for span in SPANS:
        seconds = best_of(
            lambda: exact_pmf_divide_conquer(VECTOR, use_fft=True, span=span)
        )
        timings[f"fft_span{span}_seconds"] = seconds
        speedups[f"fft_span{span}_speedup"] = timings["direct_seconds"] / seconds
    default_span = resolve_conv_span()
    timings["fft_seconds"] = best_of(
        lambda: exact_pmf_divide_conquer(VECTOR, use_fft=True, span=default_span)
    )
    speedups["fft_speedup"] = timings["direct_seconds"] / timings["fft_seconds"]
    best_span = min(SPANS, key=lambda span: timings[f"fft_span{span}_seconds"])
    return {
        "config": {
            "n_transactions": len(VECTOR),
            "spans": list(SPANS),
            "default_span": default_span,
            "best_span": best_span,
        },
        "timings": timings,
        "speedups": speedups,
    }


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("ablation_convolution", json_payload))
