"""Sliding-window maintenance: incremental re-merge vs full re-mining per slide.

The streaming subsystem claims that sliding a window of ``W`` transactions
by ``k`` arrivals costs ``O(k log W)`` segment-tree bucket merges per
candidate, against the ``O(W)`` (expected support) / ``O(W * min_count)``
(exact DP tail) of batch-mining the window contents from scratch.  This
benchmark measures that claim on the dense regime the claim matters most
for: a replayed dense stream of ``N >= 2000`` transactions (the same shape
as the backend/parallel benchmarks) flowing through a half-stream window.

Two workloads, matching the two streaming miners:

* ``uapriori`` — expected-support mining (Definition 2);
* ``dp`` — exact probabilistic mining (Definition 4), where the batch side
  pays the full DP recurrence per slide.

Every slide is verified: the incremental frequent set must equal the batch
frequent set over identical window contents before any timing is reported
(equivalence is asserted unconditionally; the speedup floor can be relaxed
with ``REPRO_BENCH_REQUIRE_SPEEDUP=0`` for smoke runs on noisy shared
runners).  Steady-state slides are timed — the initial window fill and the
first mining pass (candidate registration) are excluded from both sides,
mirroring how the backend benchmarks exclude one-time view builds.

Measured quantities land in ``benchmarks/results/bench_stream_window.csv``:
``{algo}_incremental_seconds``, ``{algo}_batch_seconds`` (totals over the
timed slides) and ``{algo}_speedup``.

Run with ``pytest benchmarks/bench_stream_window.py -s`` or directly as a
script.  ``REPRO_STREAM_WINDOW`` / ``REPRO_STREAM_STEP`` /
``REPRO_STREAM_SLIDES`` shrink the workload (the CI streaming smoke step
uses a tiny window with 2 slides).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

from repro.core.miner import mine
from repro.eval import reporting
from repro.stream import BATCH_EQUIVALENTS, TransactionStream, make_streaming_miner

from bench_backend_columnar import make_dense_database
from conftest import RESULTS_DIR, emit

#: replayed stream length (dense regime; >= 2000 at the default scale)
N_STREAM = max(2000, int(os.environ.get("REPRO_STREAM_LENGTH", "2000")))
#: sliding window capacity
WINDOW = int(os.environ.get("REPRO_STREAM_WINDOW", "1000"))
#: arrivals per slide
STEP = int(os.environ.get("REPRO_STREAM_STEP", "25"))
#: timed steady-state slides
SLIDES = int(os.environ.get("REPRO_STREAM_SLIDES", "12"))

#: thresholds of the two workloads (dense regime of Figures 4/5)
MIN_ESUP_RATIO = 0.25
MIN_SUP_RATIO = 0.3
PFT = 0.9

#: incremental maintenance must beat per-slide full re-mining by this factor
SPEEDUP_FLOOR = 5.0

#: set REPRO_BENCH_REQUIRE_SPEEDUP=0 to report timings without gating on
#: them (CI smoke runs on shared runners; frequent-set equivalence is
#: always asserted regardless)
REQUIRE_SPEEDUP = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP", "1").strip() != "0"

#: streaming variant -> shared thresholds; the batch counterpart comes from
#: the canonical repro.stream.BATCH_EQUIVALENTS mapping
WORKLOADS = {
    "uapriori": {"min_esup": MIN_ESUP_RATIO},
    "dp": {"min_sup": MIN_SUP_RATIO, "pft": PFT},
}


def _itemset_keys(result) -> set:
    return {record.itemset.items for record in result}


def run_benchmark() -> Dict[str, float]:
    database = make_dense_database(n_transactions=N_STREAM)
    measurements: Dict[str, float] = {
        "n_stream": float(len(database)),
        "window": float(WINDOW),
        "step": float(STEP),
        "slides": float(SLIDES),
    }

    for algorithm, thresholds in WORKLOADS.items():
        batch_algorithm = BATCH_EQUIVALENTS[algorithm]
        stream = TransactionStream.from_database(database)
        miner = make_streaming_miner(algorithm, WINDOW, **thresholds)
        # Window fill + first mine: one-time candidate registration,
        # excluded from the steady-state timing.  The batch side keeps
        # paying its per-slide view build inside the timed region — a
        # from-scratch re-mine carries no state between slides by design.
        warm = miner.advance(stream, WINDOW)
        assert warm is not None, "stream shorter than the window"

        incremental_seconds = 0.0
        batch_seconds = 0.0
        slides_run = 0
        for _ in range(SLIDES):
            started = time.perf_counter()
            result = miner.advance(stream, STEP)
            incremental_seconds += time.perf_counter() - started
            if result is None:
                break
            slides_run += 1

            contents = miner.window.contents()
            started = time.perf_counter()
            batch = mine(contents, algorithm=batch_algorithm, **thresholds)
            batch_seconds += time.perf_counter() - started

            assert _itemset_keys(result) == _itemset_keys(batch), (
                f"streaming {algorithm} diverged from batch {batch_algorithm} "
                f"on window [{miner.window.oldest_sequence}, "
                f"{miner.window.next_sequence})"
            )
        assert slides_run > 0, "no slides completed; stream/window sizes inconsistent"

        measurements[f"{algorithm}_slides"] = float(slides_run)
        measurements[f"{algorithm}_incremental_seconds"] = incremental_seconds
        measurements[f"{algorithm}_batch_seconds"] = batch_seconds
        measurements[f"{algorithm}_speedup"] = (
            batch_seconds / incremental_seconds if incremental_seconds > 0 else float("inf")
        )

    return measurements


class _Point:
    """Minimal row shim for the shared CSV writer."""

    def __init__(self, payload: Dict[str, float]) -> None:
        self._payload = payload

    def as_dict(self) -> Dict[str, object]:
        return dict(self._payload)


def _report(measurements: Dict[str, float]) -> None:
    rows: List[Dict[str, float]] = [
        {"measure": key, "value": value} for key, value in measurements.items()
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    reporting.write_csv(
        [_Point(row) for row in rows], RESULTS_DIR / "bench_stream_window.csv"
    )
    emit(
        "Sliding-window maintenance (incremental vs full re-mine per slide)",
        reporting.format_table(rows, ["measure", "value"]),
    )


def _assert_speedup(measurements: Dict[str, float]) -> None:
    if not REQUIRE_SPEEDUP:
        print("(speedup assertion disabled via REPRO_BENCH_REQUIRE_SPEEDUP=0)")
        return
    for algorithm in WORKLOADS:
        speedup = measurements[f"{algorithm}_speedup"]
        assert speedup >= SPEEDUP_FLOOR, (
            f"incremental {algorithm} window maintenance only {speedup:.2f}x "
            f"faster than per-slide re-mining (floor {SPEEDUP_FLOOR}x): "
            f"{measurements}"
        )


def test_stream_window_speedup():
    measurements = run_benchmark()
    _report(measurements)
    _assert_speedup(measurements)


def json_payload():
    """Machine-readable measurements for the benchmark trajectory (--json).

    Keeps the direct-run behaviour of the historical ``__main__``: the
    human-readable report is printed and the speedup floor asserted
    (``REPRO_BENCH_REQUIRE_SPEEDUP=0`` disables the floor, as before).
    """
    from benchio import split_measurements

    measurements = run_benchmark()
    _report(measurements)
    _assert_speedup(measurements)
    return split_measurements(measurements)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("stream_window", json_payload))
