"""Serving-layer benchmark: warm vs cold latency under concurrent load.

Boots a :class:`repro.service.MiningServer` in-process, registers a
store-built dataset, and drives it with concurrent socket clients the way
a deployment would:

* **Cold** — every request mines from scratch (``cache: false``): the
  per-request latency of the library itself plus protocol overhead.
* **Warm** — the same requests served from the monotonicity-exploiting
  result cache (exact hits after a priming pass): registry checkout +
  cache lookup + serialization.
* **Concurrent** — N client threads hammering a threshold mix (exact
  hits, monotone filters) through the bounded worker pool; the headline
  is sustained throughput and tail latency.

Asserted contracts (the acceptance bar of the service PR):

* warm p50 latency is >= 5x better than cold p50,
* every cached reply (hit or filter) is bitwise identical to a fresh
  ``cache: false`` mine of the same request.

Sizing knobs (environment): ``REPRO_SERVICE_BENCH_ROWS`` (default 20000),
``REPRO_SERVICE_BENCH_ITEMS`` (default 24), ``REPRO_SERVICE_BENCH_CLIENTS``
(default 4), ``REPRO_SERVICE_BENCH_REQUESTS`` (per client, default 25).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--json]
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import Any, Dict, List

from benchio import bench_main

#: low enough that the level-wise search reaches triples among the hot
#: items — cold requests must pay for real mining, not just singleton scans
MIN_ESUP_GRID = [0.05, 0.07, 0.09, 0.12]
HOT_ITEMS = 10

DEFAULT_ROWS = 20_000
DEFAULT_ITEMS = 24
DEFAULT_CLIENTS = 4
DEFAULT_REQUESTS = 25


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def _build_store(directory: str, n_rows: int, n_items: int, seed: int = 13):
    import numpy as np

    from repro.db.store import ColumnarStore

    rng = np.random.default_rng(seed)
    with ColumnarStore.writer(
        directory, n_rows, name=f"service-bench-{n_rows}x{n_items}"
    ) as writer:
        for item in range(n_items):
            density = 0.6 if item < HOT_ITEMS else 0.25
            rows = np.flatnonzero(rng.random(n_rows) < density).astype(np.int64)
            probs = 0.5 + 0.4 * rng.random(rows.size)
            writer.add_column(item, rows, probs)
    return ColumnarStore.open(directory)


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _timed_requests(client, requests: List[Dict[str, Any]]) -> List[float]:
    latencies = []
    for params in requests:
        started = time.perf_counter()
        client.mine(**params)
        latencies.append(time.perf_counter() - started)
    return latencies


def collect() -> Dict[str, Any]:
    from repro.service import MiningClient, MiningServer

    n_rows = _env_int("REPRO_SERVICE_BENCH_ROWS", DEFAULT_ROWS)
    n_items = _env_int("REPRO_SERVICE_BENCH_ITEMS", DEFAULT_ITEMS)
    n_clients = _env_int("REPRO_SERVICE_BENCH_CLIENTS", DEFAULT_CLIENTS)
    n_requests = _env_int("REPRO_SERVICE_BENCH_REQUESTS", DEFAULT_REQUESTS)

    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as directory:
        store_dir = os.path.join(directory, "store")
        started = time.perf_counter()
        _build_store(store_dir, n_rows, n_items)
        build_seconds = time.perf_counter() - started

        with MiningServer(max_workers=4, max_queue=64) as server:
            host, port = server.address
            with MiningClient(host, port, timeout_seconds=300.0) as client:
                client.register("bench", kind="store", directory=store_dir)

                base = [
                    {"dataset": "bench", "algorithm": "uapriori", "min_esup": t}
                    for t in MIN_ESUP_GRID
                ]

                # Cold: full mines, cache bypassed entirely.
                cold = _timed_requests(
                    client, [dict(p, cache=False) for p in base] * 3
                )

                # Prime at the loosest threshold, then once per point so the
                # warm pass is all exact hits.
                fresh_replies = {}
                for params in base:
                    fresh_replies[params["min_esup"]] = client.mine(**params)

                warm = _timed_requests(client, base * 6)
                warm_check = [client.mine(**p) for p in base]
                for params, reply in zip(base, warm_check):
                    assert reply["cache"] == "hit", reply["cache"]
                    fresh = client.mine(**dict(params, cache=False))
                    assert reply["itemsets"] == fresh["itemsets"], (
                        f"cached reply at min_esup={params['min_esup']} is not "
                        "bitwise identical to a fresh mine"
                    )

                cache_stats = client.stats()["result_cache"]

            # Concurrent load: every client thread mixes exact hits with
            # stricter thresholds the cache serves as monotone filters.
            filter_grid = [t + 0.01 for t in MIN_ESUP_GRID]
            mixed = [
                {"dataset": "bench", "algorithm": "uapriori", "min_esup": t}
                for t in MIN_ESUP_GRID + filter_grid
            ]
            all_latencies: List[List[float]] = [[] for _ in range(n_clients)]
            errors: List[str] = []

            def hammer(slot: int) -> None:
                try:
                    with MiningClient(host, port, timeout_seconds=300.0) as c:
                        for i in range(n_requests):
                            params = mixed[(slot + i) % len(mixed)]
                            started = time.perf_counter()
                            c.mine(**params)
                            all_latencies[slot].append(
                                time.perf_counter() - started
                            )
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(repr(error))

            started = time.perf_counter()
            threads = [
                threading.Thread(target=hammer, args=(slot,))
                for slot in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            concurrent_seconds = time.perf_counter() - started
            assert not errors, f"concurrent clients failed: {errors}"

            concurrent = [x for slot in all_latencies for x in slot]
            server_stats_served = server.requests_served

    cold_p50 = _percentile(cold, 0.5)
    warm_p50 = _percentile(warm, 0.5)
    speedup = cold_p50 / warm_p50
    assert speedup >= 5.0, (
        f"warm p50 ({warm_p50 * 1e3:.3f}ms) is only {speedup:.1f}x better than "
        f"cold p50 ({cold_p50 * 1e3:.3f}ms); the serving contract is >= 5x"
    )

    return {
        "config": {
            "n_transactions": n_rows,
            "n_items": n_items,
            "n_clients": n_clients,
            "requests_per_client": n_requests,
            "min_esup_grid": MIN_ESUP_GRID,
            "n_frequent_loosest": fresh_replies[MIN_ESUP_GRID[0]]["n"],
            "result_cache": cache_stats,
            "requests_served": server_stats_served,
        },
        "timings": {
            "store_build_seconds": build_seconds,
            "cold_p50_seconds": cold_p50,
            "cold_p99_seconds": _percentile(cold, 0.99),
            "warm_p50_seconds": warm_p50,
            "warm_p99_seconds": _percentile(warm, 0.99),
            "concurrent_p50_seconds": _percentile(concurrent, 0.5),
            "concurrent_p99_seconds": _percentile(concurrent, 0.99),
            "concurrent_wall_seconds": concurrent_seconds,
        },
        "speedups": {
            "warm_vs_cold_p50_speedup": speedup,
        },
        "metrics": {
            "concurrent_throughput_rps": len(concurrent) / concurrent_seconds,
        },
    }


if __name__ == "__main__":
    import sys

    sys.exit(bench_main("service", collect))
