"""Table 10: the winner matrix summarising who is fastest where.

Re-runs a compact version of the Figure 4/5/6 sweeps and reports, per
experiment, the algorithm with the lowest total running time — the analogue
of the checkmarks in the paper's Table 10.
"""

from repro.eval import (
    figure4_time_and_memory,
    figure5_min_sup,
    figure6_min_sup,
    run_experiment,
    summary_matrix,
)
from repro.eval.reporting import format_summary_matrix

from conftest import emit, SCALE


def test_table10_summary(benchmark):
    def run_all():
        points = []
        specs = (
            figure4_time_and_memory(SCALE)
            + figure5_min_sup(SCALE)
            + figure6_min_sup(SCALE)
        )
        for spec in specs:
            points.extend(run_experiment(spec, max_points=2))
        return points

    points = benchmark.pedantic(run_all, rounds=1, iterations=1)
    winners = summary_matrix(points)
    emit("Table 10: fastest algorithm per experiment", format_summary_matrix(winners))

    # Structural checks in the spirit of the paper's conclusions:
    # an expected-support miner wins the expected-support experiments, and an
    # approximate miner (never the exact DCB) wins the approximate experiments.
    for experiment_id, winner in winners.items():
        if experiment_id.startswith("fig4"):
            assert winner in ("uapriori", "uh-mine", "ufp-growth")
        if experiment_id.startswith("fig6"):
            assert winner in ("pdu-apriori", "ndu-apriori", "nduh-mine")


def json_payload(max_points=None):
    """Machine-readable summary sweep for the benchmark trajectory (--json)."""
    from benchio import sweep_payload
    from repro.eval import run_experiment

    specs = (
        figure4_time_and_memory(SCALE)
        + figure5_min_sup(SCALE)
        + figure6_min_sup(SCALE)
    )
    return sweep_payload(
        specs, run_experiment, max_points=2 if max_points is None else max_points
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("table10_summary", json_payload))
