"""Figure 6(e-h): approximate probabilistic miners (plus DCB) vs ``pft``."""

import pytest

from repro.core import mine
from repro.eval import figure6_pft, run_experiment

from conftest import emit, save_and_render, SCALE

ALGORITHMS = ("dcb", "pdu-apriori", "ndu-apriori", "nduh-mine")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("pft", [0.9, 0.3])
def test_fig6_pft_point(benchmark, kosarak_db, algorithm, pft):
    benchmark.group = f"fig6-pft:kosarak@{pft}"
    result = benchmark(
        lambda: mine(kosarak_db, algorithm=algorithm, min_sup=0.05, pft=pft)
    )
    assert len(result) >= 0


@pytest.mark.parametrize("panel_index", range(2))
def test_fig6_pft_report(benchmark, panel_index):
    spec = figure6_pft(SCALE, track_memory=True)[panel_index]
    points = benchmark.pedantic(lambda: run_experiment(spec), rounds=1, iterations=1)
    emit(spec.title, save_and_render(points, spec.experiment_id))
    emit(
        spec.title + " (peak memory bytes)",
        save_and_render(points, f"{spec.experiment_id}_memory", measure="peak_memory_bytes"),
    )
    assert len(points) == len(spec.values) * len(spec.algorithms)


def json_payload(max_points=None):
    """Machine-readable sweep results for the benchmark trajectory (--json)."""
    from benchio import sweep_payload
    from repro.eval import run_experiment

    return sweep_payload(figure6_pft(SCALE, track_memory=True), run_experiment, max_points=max_points)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("fig6_approx_pft", json_payload))
