"""Shared fixtures and helpers for the benchmark harness.

Every benchmark module regenerates one figure panel or table of the paper.
Two kinds of benchmarks exist:

* *point benchmarks* — pytest-benchmark timings of a single algorithm at a
  representative parameter value (the individual points of a figure);
* *report benchmarks* — a single run of the full sweep behind a panel/table,
  printing the same rows/series the paper reports and writing them to
  ``benchmarks/results/*.csv``.

Run them with ``pytest benchmarks/ --benchmark-only``.  The ``REPRO_SCALE``
environment variable scales the datasets (default 0.002, i.e. 0.2% of the
published sizes); raise it to approach the paper's scale at the cost of a
much longer run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets import registry as dataset_registry
from repro.db.database import UncertainDatabase, resolve_backend
from repro.eval import reporting

#: default dataset scale for benchmark runs (fraction of the published size)
SCALE = float(os.environ.get("REPRO_SCALE", "0.002"))

#: probability-evaluation backend for the whole benchmark run; set
#: ``REPRO_BACKEND=rows`` to time the historical per-transaction path.
_BACKEND_ENV = os.environ.get("REPRO_BACKEND")
BACKEND = resolve_backend(_BACKEND_ENV or None)
if _BACKEND_ENV:
    # Explicit opt-in only: the override is process-wide, so it would also
    # apply to a co-collected test suite.  Without the env var the class
    # default (columnar) is left untouched.
    UncertainDatabase.default_backend = BACKEND

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_configure(config):
    """Trim pytest-benchmark's calibration so the full harness stays quick.

    Users can still override both knobs on the command line; the defaults are
    only replaced when they match the plugin's own defaults.
    """
    if getattr(config.option, "benchmark_min_rounds", None) == 5:
        config.option.benchmark_min_rounds = 3
    if getattr(config.option, "benchmark_max_time", None) == 1.0:
        config.option.benchmark_max_time = 0.25


def save_and_render(
    points, name: str, kind: str = "sweep", measure: str = "elapsed_seconds"
) -> str:
    """Persist sweep/accuracy points to CSV and return the formatted table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    reporting.write_csv(points, RESULTS_DIR / f"{name}.csv")
    if kind == "accuracy":
        return reporting.format_accuracy_table(points)
    return reporting.format_sweep_table(points, measure=measure)


def emit(title: str, table: str) -> None:
    """Print a labelled table (visible with ``pytest -s``; always in the CSVs)."""
    print(f"\n=== {title} ===\n{table}")


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE


@pytest.fixture(scope="session")
def backend() -> str:
    return BACKEND


@pytest.fixture(scope="session")
def connect_db():
    return dataset_registry.load_dataset("connect", scale=SCALE)


@pytest.fixture(scope="session")
def accident_db():
    return dataset_registry.load_dataset("accident", scale=SCALE)


@pytest.fixture(scope="session")
def kosarak_db():
    return dataset_registry.load_dataset("kosarak", scale=SCALE)


@pytest.fixture(scope="session")
def gazelle_db():
    return dataset_registry.load_dataset("gazelle", scale=SCALE)


@pytest.fixture(scope="session")
def quest_db():
    return dataset_registry.load_dataset("t25i15d", n_transactions=800)
