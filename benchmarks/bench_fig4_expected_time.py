"""Figure 4(a-d): running time of the expected-support miners vs ``min_esup``.

Point benchmarks time each of UApriori, UH-Mine and UFP-growth at a
representative threshold on each of the four benchmark analogues; the report
benchmark regenerates the full per-panel sweep (one series per algorithm, one
row per threshold) exactly as the paper plots it.
"""

import pytest

from repro.core import mine
from repro.eval import figure4_time_and_memory, run_experiment

from conftest import emit, save_and_render, SCALE

ALGORITHMS = ("uapriori", "uh-mine", "ufp-growth")

# One representative (dataset fixture, min_esup) pair per panel.
PANEL_POINTS = [
    ("connect_db", 0.6),
    ("accident_db", 0.2),
    ("kosarak_db", 0.01),
    ("gazelle_db", 0.025),
]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("dataset_fixture,min_esup", PANEL_POINTS)
def test_fig4_point(benchmark, request, algorithm, dataset_fixture, min_esup):
    database = request.getfixturevalue(dataset_fixture)
    benchmark.group = f"fig4-time:{database.name}@{min_esup}"
    result = benchmark(lambda: mine(database, algorithm=algorithm, min_esup=min_esup))
    assert len(result) >= 0


@pytest.mark.parametrize("panel_index", range(4))
def test_fig4_report(benchmark, panel_index):
    """Regenerate one full panel of Figure 4 (time series per algorithm)."""
    spec = figure4_time_and_memory(SCALE)[panel_index]
    points = benchmark.pedantic(lambda: run_experiment(spec), rounds=1, iterations=1)
    emit(spec.title, save_and_render(points, spec.experiment_id))
    assert len(points) == len(spec.values) * len(spec.algorithms)


def json_payload(max_points=None):
    """Machine-readable sweep results for the benchmark trajectory (--json)."""
    from benchio import sweep_payload
    from repro.eval import run_experiment

    return sweep_payload(figure4_time_and_memory(SCALE), run_experiment, max_points=max_points)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("fig4_expected_time", json_payload))
