"""Figure 4(e-h): memory cost of the expected-support miners vs ``min_esup``.

Peak Python-heap allocation (tracemalloc) is the uniform memory measure; the
report regenerates the per-panel memory series of the paper.
"""

import pytest

from repro.core import mine
from repro.eval import figure4_time_and_memory, run_experiment

from conftest import emit, save_and_render, SCALE

ALGORITHMS = ("uapriori", "uh-mine", "ufp-growth")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize(
    "dataset_fixture,min_esup", [("connect_db", 0.6), ("kosarak_db", 0.01)]
)
def test_fig4_memory_point(benchmark, request, algorithm, dataset_fixture, min_esup):
    """Time one memory-instrumented run (memory figures are in the report CSVs)."""
    database = request.getfixturevalue(dataset_fixture)
    benchmark.group = f"fig4-memory:{database.name}@{min_esup}"
    result = benchmark.pedantic(
        lambda: mine(
            database, algorithm=algorithm, min_esup=min_esup, track_memory=True
        ),
        rounds=1,
        iterations=1,
    )
    assert result.statistics.peak_memory_bytes > 0


@pytest.mark.parametrize("panel_index", range(4))
def test_fig4_memory_report(benchmark, panel_index):
    """Regenerate one full memory panel of Figure 4(e-h)."""
    spec = figure4_time_and_memory(SCALE, track_memory=True)[panel_index]
    points = benchmark.pedantic(lambda: run_experiment(spec), rounds=1, iterations=1)
    emit(
        spec.title + " (peak memory bytes)",
        save_and_render(points, f"{spec.experiment_id}_memory", measure="peak_memory_bytes"),
    )
    assert all(point.peak_memory_bytes > 0 for point in points)


def json_payload(max_points=None):
    """Machine-readable sweep results for the benchmark trajectory (--json)."""
    from benchio import sweep_payload
    from repro.eval import run_experiment

    return sweep_payload(figure4_time_and_memory(SCALE, track_memory=True), run_experiment, max_points=max_points)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("fig4_expected_memory", json_payload))
