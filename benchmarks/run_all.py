"""Benchmark trajectory driver: run bench modules in --json mode, aggregate.

Runs any subset of the ``bench_*.py`` modules through their uniform
``--json`` entry points (each writes ``BENCH_<name>.json`` under
``benchmarks/results``) and folds every per-benchmark document found there
into one repo-root ``BENCH_summary.json`` — the machine-readable record
future PRs diff to track performance over time.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # quick set
    PYTHONPATH=src python benchmarks/run_all.py --all      # every benchmark
    PYTHONPATH=src python benchmarks/run_all.py --only bitset_cascade topk
    PYTHONPATH=src python benchmarks/run_all.py --aggregate-only

The quick set covers the micro-benchmarks with asserted floors (seconds
each); the full set also replays every figure/table sweep (minutes at the
default ``REPRO_SCALE``).  ``--max-points`` is forwarded to the sweeps.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

from benchio import REPO_ROOT, RESULTS_DIR, SCHEMA_VERSION, environment_stamp

BENCH_DIR = Path(__file__).resolve().parent

#: module stem -> BENCH_<name>.json stem
BENCHES = {
    "bench_bitset_cascade": "bitset_cascade",
    "bench_backend_columnar": "backend_columnar",
    "bench_parallel_scaling": "parallel_scaling",
    "bench_stream_window": "stream_window",
    "bench_store_fanout": "store_fanout",
    "bench_service": "service",
    "bench_resilience": "resilience",
    "bench_topk": "topk",
    "bench_planner": "planner",
    "bench_table4_probability_methods": "table4_probability_methods",
    "bench_ablation_convolution": "ablation_convolution",
    "bench_definition_unification": "definition_unification",
    "bench_fig4_expected_time": "fig4_expected_time",
    "bench_fig4_expected_memory": "fig4_expected_memory",
    "bench_fig4_scalability": "fig4_scalability",
    "bench_fig4_zipf": "fig4_zipf",
    "bench_fig5_exact_minsup": "fig5_exact_minsup",
    "bench_fig5_exact_pft": "fig5_exact_pft",
    "bench_fig5_scalability": "fig5_scalability",
    "bench_fig5_zipf": "fig5_zipf",
    "bench_fig6_approx_minsup": "fig6_approx_minsup",
    "bench_fig6_approx_pft": "fig6_approx_pft",
    "bench_fig6_scalability": "fig6_scalability",
    "bench_fig6_zipf": "fig6_zipf",
    "bench_table8_accuracy_dense": "table8_accuracy_dense",
    "bench_table9_accuracy_sparse": "table9_accuracy_sparse",
    "bench_table10_summary": "table10_summary",
}

#: fast modules with asserted floors or sub-minute runtimes
QUICK = [
    "bench_bitset_cascade",
    "bench_backend_columnar",
    "bench_store_fanout",
    "bench_service",
    "bench_resilience",
    "bench_table4_probability_methods",
    "bench_ablation_convolution",
    "bench_definition_unification",
    "bench_planner",
]


def run_bench(module: str, max_points: int | None) -> bool:
    """Run one bench module in --json mode; True on success."""
    command = [sys.executable, str(BENCH_DIR / f"{module}.py"), "--json"]
    if max_points is not None:
        command += ["--max-points", str(max_points)]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, str(BENCH_DIR), env.get("PYTHONPATH", "")) if part
    )
    print(f"== {module}")
    completed = subprocess.run(command, env=env, cwd=str(BENCH_DIR))
    return completed.returncode == 0


def _condense(document: dict) -> dict:
    """The trajectory-relevant slice of one benchmark document.

    History points keep only the measured numbers (timings, speedups and
    any asserted ratios); the full latest documents — configs included —
    live under the summary's ``benches`` key.
    """
    return {
        key: document[key]
        for key in ("timings", "speedups", "ratios", "metrics")
        if key in document
    }


def aggregate(summary_path: Path, max_points: int | None = None) -> int:
    """Fold every BENCH_*.json under benchmarks/results into the summary.

    The summary keeps the full latest documents under ``benches`` and
    *appends* a condensed per-run point under ``history`` with a
    monotonically increasing ``run`` index, so successive invocations build
    the performance trajectory instead of overwriting it.  ``max_points``
    (the ``--max-history`` flag — distinct from ``--max-points``, which
    truncates the *sweeps*) trims the history to its most recent points.
    """
    benches = {}
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        document = json.loads(path.read_text())
        benches[document.get("bench", path.stem[len("BENCH_") :])] = document
    history = []
    if summary_path.exists():
        try:
            history = json.loads(summary_path.read_text()).get("history", [])
        except (json.JSONDecodeError, AttributeError):
            history = []
    last_run = max((int(point.get("run", 0)) for point in history), default=0)
    history.append(
        {
            "run": last_run + 1,
            "environment": environment_stamp(),
            "benches": {name: _condense(doc) for name, doc in benches.items()},
        }
    )
    if max_points is not None and max_points > 0:
        history = history[-max_points:]
    summary = {
        "schema": SCHEMA_VERSION,
        "environment": environment_stamp(),
        "n_benches": len(benches),
        "benches": benches,
        "history": history,
    }
    summary_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(
        f"aggregated {len(benches)} benchmark documents into {summary_path} "
        f"(history point {last_run + 1}, {len(history)} retained)"
    )
    return len(benches)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="run_all")
    parser.add_argument("--all", action="store_true", help="run every benchmark")
    parser.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="NAME",
        help="run only these benches (module stem or short name)",
    )
    parser.add_argument(
        "--aggregate-only",
        action="store_true",
        help="skip running; only fold existing BENCH_*.json into the summary",
    )
    parser.add_argument(
        "--max-points", type=int, default=None, help="truncate sweeps (quick mode)"
    )
    parser.add_argument(
        "--max-history",
        type=int,
        default=50,
        help="retain at most this many trajectory points in the summary history",
    )
    parser.add_argument(
        "--summary",
        default=str(REPO_ROOT / "BENCH_summary.json"),
        help="summary path (default: repo-root BENCH_summary.json)",
    )
    args = parser.parse_args(argv)

    failures = []
    if not args.aggregate_only:
        if args.only:
            by_short = {short: module for module, short in BENCHES.items()}
            selected = []
            for name in args.only:
                module = name if name in BENCHES else by_short.get(name)
                if module is None:
                    parser.error(f"unknown benchmark {name!r}")
                selected.append(module)
        elif args.all:
            selected = list(BENCHES)
        else:
            selected = list(QUICK)
        for module in selected:
            if not run_bench(module, args.max_points):
                failures.append(module)

    aggregate(Path(args.summary), args.max_history)
    if failures:
        print(f"FAILED: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
