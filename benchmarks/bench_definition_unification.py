"""Section 1 / 4.5 claim: the two frequent-itemset definitions unify on large data.

The paper argues that once the variance is tracked next to the expected
support, the Normal approximation turns any expected-support miner into a
probabilistic miner with negligible error — provided the database is large
enough for the central limit theorem.  This benchmark measures the maximum
absolute error of the Normal (and Poisson) approximation against the exact
frequent probability as the database grows, and checks that it vanishes.
"""

import numpy as np
import pytest

from repro.core.support import SupportDistribution

from conftest import emit

SIZES = (50, 200, 800, 3200)


def approximation_errors(n: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    probabilities = rng.uniform(0.2, 0.95, size=n)
    distribution = SupportDistribution(probabilities)
    min_count = int(0.5 * n)
    exact = distribution.frequent_probability(min_count)
    normal_error = abs(distribution.normal_frequent_probability(min_count) - exact)
    poisson_error = abs(distribution.poisson_frequent_probability(min_count) - exact)
    return normal_error, poisson_error


@pytest.mark.parametrize("n", SIZES)
def test_unification_point(benchmark, n):
    benchmark.group = f"definition-unification:N={n}"
    normal_error, poisson_error = benchmark(lambda: approximation_errors(n))
    assert normal_error <= 1.0 and poisson_error <= 1.0


def test_unification_report(benchmark):
    def sweep():
        return {n: approximation_errors(n) for n in SIZES}

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = "\n".join(
        f"N={n:5d}  normal_error={errors[n][0]:.5f}  poisson_error={errors[n][1]:.5f}"
        for n in SIZES
    )
    emit("Definition unification: approximation error vs database size", rows)
    # The Normal approximation error must vanish with N and beat Poisson on
    # large databases (the paper's argument for NDU* over PDU*).
    assert errors[SIZES[-1]][0] < 0.01
    assert errors[SIZES[-1]][0] <= errors[SIZES[0]][0] + 1e-9
    assert errors[SIZES[-1]][0] <= errors[SIZES[-1]][1] + 1e-9


def json_payload():
    """Machine-readable approximation-error sweep for the trajectory (--json)."""
    errors = {n: approximation_errors(n) for n in SIZES}
    return {
        "config": {"sizes": list(SIZES)},
        "timings": {},
        "errors": {
            str(n): {"normal": errors[n][0], "poisson": errors[n][1]} for n in SIZES
        },
    }


if __name__ == "__main__":  # pragma: no cover - manual entry point
    from benchio import bench_main

    raise SystemExit(bench_main("definition_unification", json_payload))
