#!/usr/bin/env python
"""CI tripwire: the levelwise loop must not grow back outside the engine.

The MinerSpec refactor collapsed thirteen hand-rolled levelwise loops into
:class:`repro.core.search.LevelwiseSearch`.  This script fails CI whenever a
loop fingerprint — ``while current_level`` or a call to ``apriori_join(`` —
reappears in ``src/`` outside the two files allowed to own it:

* ``repro/core/search.py`` — the driver (calls the join);
* ``repro/algorithms/common.py`` — the join's definition.

A hit anywhere else means someone re-implemented the search loop instead of
writing a spec; route the new miner through ``LevelwiseSearch`` instead
(see the "writing a new miner" guide in the README).

Exit status: 0 when clean, 1 when a duplicate loop is found.
"""

from __future__ import annotations

import os
import re

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SOURCE_ROOT = os.path.join(REPO_ROOT, "src")

#: the loop fingerprints that may only exist inside the engine
FINGERPRINTS = (
    re.compile(r"while current_level"),
    re.compile(r"\bapriori_join\("),
)

#: the only files allowed to contain a fingerprint (repo-relative)
ALLOWED = frozenset(
    {
        os.path.join("src", "repro", "core", "search.py"),
        os.path.join("src", "repro", "algorithms", "common.py"),
    }
)


def find_violations(source_root: str = SOURCE_ROOT):
    violations = []
    for directory, _subdirs, filenames in os.walk(source_root):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(directory, filename)
            relative = os.path.relpath(path, REPO_ROOT)
            if relative in ALLOWED:
                continue
            with open(path, encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    for fingerprint in FINGERPRINTS:
                        if fingerprint.search(line):
                            violations.append(
                                (relative, line_number, fingerprint.pattern, line.rstrip())
                            )
    return violations


def main() -> int:
    violations = find_violations()
    if not violations:
        print("loop-duplication tripwire: clean (the engine owns the only loop)")
        return 0
    print("loop-duplication tripwire: the levelwise loop leaked out of the engine:")
    for relative, line_number, pattern, line in violations:
        print(f"  {relative}:{line_number}: [{pattern}] {line}")
    print(
        "\nNew miners must be MinerSpec bindings driven by "
        "repro.core.search.LevelwiseSearch, not hand-rolled loops."
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
