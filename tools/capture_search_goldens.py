"""Capture the golden-result grid pinning the MinerSpec engine migration.

Runs every registered miner over the equivalence grid

    miner x backend {rows, columnar} x (workers, shards) {(1,1), (2,2)}
          x bitset {on, off}

plus the streaming miners (per-slide records) and the top-k evaluators,
on a fixed seeded database, and serializes every ``MiningResult`` record
with exact ``repr`` floats (``repr`` round-trips binary64, so equality of
the serialized form is bitwise equality of the results).

The checked-in ``tests/goldens/search_engine_goldens.json`` was captured at
the last pre-refactor commit; ``tests/test_search_engine.py`` replays the
grid against it.  Re-run this script only when a change *intends* to alter
mining results (there should be none — every engine change is held to the
bitwise contract):

    PYTHONPATH=src:tests python tools/capture_search_goldens.py
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "tests"))

GOLDEN_PATH = os.path.join(REPO_ROOT, "tests", "goldens", "search_engine_goldens.json")

#: the fixed dataset every golden is captured on
DATASET = dict(n_transactions=50, n_items=9, density=0.7, seed=7, name="golden")

#: thresholds chosen so every family yields a multi-level frequent set
MIN_ESUP = 0.05
MIN_SUP = 0.07
PFT = 0.5

#: registered miners and the per-miner constructor options the grid uses
MINER_OPTIONS: Dict[str, Dict[str, object]] = {
    "uapriori": {},
    "ufp-growth": {},
    "uh-mine": {},
    "dpb": {},
    "dpnb": {},
    "dcb": {},
    "dcnb": {},
    "pdu-apriori": {"report_probabilities": True},
    "ndu-apriori": {},
    "nduh-mine": {},
    "world-sampling": {"n_worlds": 120, "seed": 3},
    "exhaustive-expected": {"max_size": 5},
    "exhaustive-prob": {"max_size": 4},
}

GRID = [
    {"backend": "rows", "workers": 1, "shards": 1, "bitset": True},
    {"backend": "rows", "workers": 2, "shards": 2, "bitset": True},
    {"backend": "columnar", "workers": 1, "shards": 1, "bitset": True},
    {"backend": "columnar", "workers": 1, "shards": 1, "bitset": False},
    {"backend": "columnar", "workers": 2, "shards": 2, "bitset": True},
    {"backend": "columnar", "workers": 2, "shards": 2, "bitset": False},
]

TOPK_EVALUATORS = ("esup", "dp", "dc", "normal", "poisson")
TOPK_K = 10

STREAM_WINDOW = 32
STREAM_STEP = 8
STREAM_SLIDES = 4


def _maybe_repr(value: Optional[float]) -> Optional[str]:
    return None if value is None else repr(float(value))


def serialize_records(records) -> List[List[object]]:
    """Exact serialized view of an iterable of ``FrequentItemset`` records."""
    return [
        [
            list(record.itemset.items),
            _maybe_repr(record.expected_support),
            _maybe_repr(record.variance),
            _maybe_repr(record.frequent_probability),
        ]
        for record in records
    ]


def config_key(algorithm: str, config: Dict[str, object]) -> str:
    return (
        f"{algorithm}|{config['backend']}|w{config['workers']}s{config['shards']}"
        f"|bitset={'on' if config['bitset'] else 'off'}"
    )


def make_database():
    from helpers import make_random_database

    return make_random_database(**DATASET)


def capture_threshold_grid(database) -> Dict[str, List[List[object]]]:
    from repro.core.miner import mine
    from repro.core.registry import get_algorithm

    goldens: Dict[str, List[List[object]]] = {}
    for algorithm, options in MINER_OPTIONS.items():
        family = get_algorithm(algorithm).family
        for config in GRID:
            kwargs = dict(
                options,
                backend=config["backend"],
                workers=config["workers"],
                shards=config["shards"],
                plan={"bitset": config["bitset"]},
            )
            if family == "expected":
                result = mine(database, algorithm, min_esup=MIN_ESUP, **kwargs)
            else:
                result = mine(database, algorithm, min_sup=MIN_SUP, pft=PFT, **kwargs)
            goldens[config_key(algorithm, config)] = serialize_records(result)
            print(f"  {config_key(algorithm, config)}: {len(result)} records")
    return goldens


def capture_topk(database) -> Dict[str, List[List[object]]]:
    from repro.algorithms.topk import TopKMiner

    goldens: Dict[str, List[List[object]]] = {}
    for evaluator in TOPK_EVALUATORS:
        for config in GRID:
            miner = TopKMiner(
                evaluator=evaluator,
                backend=config["backend"],
                workers=config["workers"],
                shards=config["shards"],
                plan={"bitset": config["bitset"]},
            )
            min_sup = None if evaluator == "esup" else MIN_SUP
            result = miner.mine(database, TOPK_K, min_sup=min_sup)
            goldens[config_key(f"topk-{evaluator}", config)] = serialize_records(
                result.itemsets
            )
            print(f"  {config_key(f'topk-{evaluator}', config)}: {len(result)} records")
    return goldens


def capture_streaming(database) -> Dict[str, List[List[List[object]]]]:
    from repro.stream import (
        StreamingDP,
        StreamingTopK,
        StreamingUApriori,
        TransactionStream,
    )

    rows = [dict(transaction.units) for transaction in database]

    def slides_of(miner):
        stream = TransactionStream.from_records(rows)
        per_slide = []
        for result in miner.results(stream, STREAM_STEP, max_slides=STREAM_SLIDES):
            per_slide.append(serialize_records(result))
        return per_slide

    goldens: Dict[str, List[List[List[object]]]] = {
        "stream-uapriori": slides_of(StreamingUApriori(STREAM_WINDOW, MIN_ESUP)),
        "stream-dp": slides_of(StreamingDP(STREAM_WINDOW, MIN_SUP, PFT)),
        "stream-topk-esup": slides_of(StreamingTopK(STREAM_WINDOW, k=5)),
        "stream-topk-dp": slides_of(
            StreamingTopK(STREAM_WINDOW, k=5, evaluator="dp", min_sup=MIN_SUP)
        ),
    }
    for key, slides in goldens.items():
        print(f"  {key}: {[len(records) for records in slides]} records/slide")
    return goldens


def main() -> int:
    database = make_database()
    print(f"dataset: {DATASET}")
    print("threshold grid:")
    threshold = capture_threshold_grid(database)
    print("top-k grid:")
    topk = capture_topk(database)
    print("streaming:")
    streaming = capture_streaming(database)
    payload = {
        "dataset": DATASET,
        "thresholds": {"min_esup": MIN_ESUP, "min_sup": MIN_SUP, "pft": PFT},
        "stream": {
            "window": STREAM_WINDOW,
            "step": STREAM_STEP,
            "slides": STREAM_SLIDES,
        },
        "topk_k": TOPK_K,
        "threshold_grid": threshold,
        "topk_grid": topk,
        "streaming": streaming,
    }
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
