"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that environments without the ``wheel`` package (where PEP 660
editable installs are unavailable) can still perform
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
